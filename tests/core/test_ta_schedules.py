"""Tests for the TA source-scheduling extension (round-robin vs
adaptive frontier advancement, DESIGN.md §6)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.cost_model import Counters
from repro.baselines.brute import BruteForceReference
from repro.core.maintenance import TAMaintainer
from repro.exceptions import InvalidParameterError
from repro.scoring.library import k_closest_pairs, paper_scoring_functions
from repro.stream.manager import StreamManager


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


def drive(maintainer, manager, rows):
    for row in rows:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)


class TestScheduleValidation:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(InvalidParameterError):
            TAMaintainer(k_closest_pairs(2), K=3, schedule="zigzag")

    def test_default_is_round_robin(self):
        assert TAMaintainer(k_closest_pairs(2), K=3).schedule == "round-robin"


@pytest.mark.parametrize("schedule", ["round-robin", "adaptive"])
class TestCorrectnessUnderBothSchedules:
    def test_skyband_matches_brute_force(self, schedule):
        sf = k_closest_pairs(2)
        N, K = 20, 4
        manager = StreamManager(N, 2)
        maintainer = TAMaintainer(sf, K, schedule=schedule)
        ref = BruteForceReference(sf, N)
        for row in random_rows(80, 2, seed=1):
            event = manager.append(row)
            maintainer.on_tick(manager, event.new, event.expired)
            ref.append(row)
        assert {p.uid for p in maintainer.skyband} == {
            p.uid for p in ref.skyband(K)
        }
        maintainer.check_invariants(manager)

    def test_all_scoring_functions(self, schedule):
        for sf in paper_scoring_functions(3):
            manager = StreamManager(15, 3)
            maintainer = TAMaintainer(sf, K=3, schedule=schedule)
            ref = BruteForceReference(sf, 15)
            for row in random_rows(45, 3, seed=2):
                event = manager.append(row)
                maintainer.on_tick(manager, event.new, event.expired)
                ref.append(row)
            assert {p.uid for p in maintainer.skyband} == {
                p.uid for p in ref.skyband(3)
            }, sf.name


class TestAdaptiveEfficiency:
    def _pairs_considered(self, schedule, d, seed=3):
        N, K, ticks = 150, 5, 150
        counters = Counters()
        sf = k_closest_pairs(d)
        manager = StreamManager(N, d)
        maintainer = TAMaintainer(sf, K, counters=counters,
                                  schedule=schedule)
        rows = random_rows(N + ticks, d, seed=seed)
        drive(maintainer, manager, rows[:N])
        counters.reset()
        drive(maintainer, manager, rows[N:])
        return counters.pairs_considered

    def test_adaptive_examines_no_more_pairs_at_high_d(self):
        """With many lists, advancing only the limiting frontier should
        not be worse than advancing all of them."""
        d = 4
        adaptive = self._pairs_considered("adaptive", d)
        round_robin = self._pairs_considered("round-robin", d)
        assert adaptive <= round_robin * 1.15

    def test_both_sublinear_in_window(self):
        for schedule in ("round-robin", "adaptive"):
            total = self._pairs_considered(schedule, d=2)
            # 150 ticks over a 150-object window: full scans would cost
            # ~150 * 149 pair accesses.
            assert total < 0.6 * 150 * 149, schedule
