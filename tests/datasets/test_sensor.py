"""Tests for the Intel-lab-like sensor stream simulator."""

from __future__ import annotations

import itertools
import statistics

from repro.datasets.sensor import SensorStreamSimulator
from repro.scoring.library import sensor_scoring_function
from repro.stream.object import StreamObject


def take(n, **kwargs):
    sim = SensorStreamSimulator(**kwargs)
    return list(itertools.islice(sim.readings(), n))


class TestShape:
    def test_reading_fields(self):
        (reading,) = take(1, seed=1)
        assert 0 <= reading.sensor_id < 54
        assert reading.time >= 0
        assert 0 <= reading.humidity <= 100
        assert reading.voltage > 2.0
        assert len(reading.values()) == 5

    def test_deterministic(self):
        assert take(100, seed=5) == take(100, seed=5)

    def test_time_nondecreasing_between_epochs(self):
        readings = take(500, seed=2, drop_rate=0.0)
        epochs = [r.time // 31.0 for r in readings]
        assert epochs == sorted(epochs)

    def test_drop_rate_thins_stream(self):
        dense = take(540, seed=3, drop_rate=0.0)
        # With 50% drops, 10 epochs produce ~270 readings instead of 540.
        sparse_sim = SensorStreamSimulator(seed=3, drop_rate=0.5)
        sparse = list(itertools.islice(sparse_sim.readings(), 540))
        assert max(r.time for r in sparse) > max(r.time for r in dense)

    def test_custom_sensor_count(self):
        readings = take(100, seed=4, num_sensors=5)
        assert {r.sensor_id for r in readings} <= set(range(5))


class TestStatistics:
    def test_temperature_plausible(self):
        temps = [r.temperature for r in take(3000, seed=6)]
        assert 5 < statistics.fmean(temps) < 35

    def test_humidity_negatively_tracks_temperature(self):
        readings = take(3000, seed=7, anomaly_rate=0.0)
        temps = [r.temperature for r in readings]
        hums = [r.humidity for r in readings]
        mt, mh = statistics.fmean(temps), statistics.fmean(hums)
        cov = sum((t - mt) * (h - mh) for t, h in zip(temps, hums))
        assert cov < 0

    def test_anomalies_create_outlier_pairs(self):
        """The paper's scoring function must find clearly better (smaller)
        scores when anomalies exist than when they do not — averaged over
        the best pairs to damp same-epoch noise."""
        sf = sensor_scoring_function()

        def best_scores_mean(anomaly_rate, seed):
            sim = SensorStreamSimulator(seed=seed, anomaly_rate=anomaly_rate)
            rows = list(itertools.islice(sim.value_rows(), 400))
            objs = [StreamObject(i + 1, row[:3]) for i, row in enumerate(rows)]
            scores = sorted(
                sf.score(a, b)
                for i, a in enumerate(objs)
                for b in objs[i + 1 : i + 30]
            )
            return statistics.fmean(scores[:25])

        with_anomalies = statistics.fmean(
            best_scores_mean(0.2, seed) for seed in (8, 9, 10)
        )
        without = statistics.fmean(
            best_scores_mean(0.0, seed) for seed in (8, 9, 10)
        )
        assert with_anomalies < without

    def test_value_rows_match_readings(self):
        sim_a = SensorStreamSimulator(seed=9)
        sim_b = SensorStreamSimulator(seed=9)
        rows = list(itertools.islice(sim_a.value_rows(), 20))
        readings = list(itertools.islice(sim_b.readings(), 20))
        assert rows == [r.values() for r in readings]
