"""Tests for the synthetic workload generators."""

from __future__ import annotations

import itertools
import math
import statistics

import pytest

from repro.datasets.synthetic import (
    DISTRIBUTIONS,
    anticorrelated_stream,
    correlated_stream,
    make_stream,
    uniform_stream,
)
from repro.exceptions import InvalidParameterError


def take(stream, n):
    return list(itertools.islice(stream, n))


def pearson(xs, ys):
    mx, my = statistics.fmean(xs), statistics.fmean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    return cov / (sx * sy)


@pytest.mark.parametrize("name", DISTRIBUTIONS)
class TestCommonProperties:
    def test_arity_and_range(self, name):
        rows = take(make_stream(name, 4, seed=1), 300)
        assert all(len(row) == 4 for row in rows)
        assert all(0.0 <= v <= 1.0 for row in rows for v in row)

    def test_deterministic_given_seed(self, name):
        a = take(make_stream(name, 3, seed=7), 50)
        b = take(make_stream(name, 3, seed=7), 50)
        assert a == b

    def test_different_seeds_differ(self, name):
        a = take(make_stream(name, 3, seed=1), 50)
        b = take(make_stream(name, 3, seed=2), 50)
        assert a != b


class TestDistributionShapes:
    def test_uniform_moments(self):
        rows = take(uniform_stream(2, seed=3), 4000)
        xs = [r[0] for r in rows]
        assert abs(statistics.fmean(xs) - 0.5) < 0.03
        assert abs(statistics.pvariance(xs) - 1 / 12) < 0.01

    def test_correlated_attributes_positively_correlated(self):
        rows = take(correlated_stream(2, seed=4), 3000)
        r = pearson([x for x, _ in rows], [y for _, y in rows])
        assert r > 0.8

    def test_anticorrelated_attributes_negatively_correlated(self):
        rows = take(anticorrelated_stream(2, seed=5), 3000)
        r = pearson([x for x, _ in rows], [y for _, y in rows])
        assert r < -0.5

    def test_anticorrelated_sums_concentrate(self):
        d = 3
        rows = take(anticorrelated_stream(d, seed=6), 2000)
        sums = [sum(row) for row in rows]
        assert abs(statistics.fmean(sums) - d / 2) < 0.1

    def test_uniform_attributes_independent(self):
        rows = take(uniform_stream(2, seed=7), 3000)
        r = pearson([x for x, _ in rows], [y for _, y in rows])
        assert abs(r) < 0.1


class TestDispatch:
    def test_unknown_distribution(self):
        with pytest.raises(InvalidParameterError):
            make_stream("zipf", 2)

    def test_single_attribute_anticorrelated(self):
        rows = take(anticorrelated_stream(1, seed=8), 20)
        assert all(len(r) == 1 for r in rows)
