"""Batched ingestion must agree with per-tick ingestion at every batch
boundary — skyband, PST, continuous answers, everything."""

from __future__ import annotations

import random

import pytest

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs, k_furthest_pairs


def random_rows(count, d, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(d)) for _ in range(count)]


@pytest.mark.parametrize("strategy", ["scase", "ta", "basic"])
@pytest.mark.parametrize("batch_size", [2, 3, 7, 16])
class TestBatchEquivalence:
    def test_matches_per_tick_at_boundaries(self, strategy, batch_size):
        sf_a, sf_b = k_closest_pairs(2), k_closest_pairs(2)
        N, K, n = 20, 4, 15
        per_tick = TopKPairsMonitor(N, 2, strategy=strategy)
        batched = TopKPairsMonitor(N, 2, strategy=strategy)
        h_tick = per_tick.register_query(sf_a, k=K, n=n)
        h_batch = batched.register_query(sf_b, k=K, n=n)
        rows = random_rows(90, 2, seed=batch_size)
        for start in range(0, len(rows), batch_size):
            chunk = rows[start:start + batch_size]
            for row in chunk:
                per_tick.append(row)
            batched.extend(chunk, batch_size=batch_size)
            got = [p.uid for p in batched.results(h_batch)]
            want = [p.uid for p in per_tick.results(h_tick)]
            assert got == want, f"boundary after {start + len(chunk)} rows"
            assert batched.skyband_size(sf_b) == per_tick.skyband_size(sf_a)
        batched.check_invariants()

    def test_matches_brute_force(self, strategy, batch_size):
        sf = k_furthest_pairs(2)
        N, K, n = 15, 3, 12
        monitor = TopKPairsMonitor(N, 2, strategy=strategy)
        handle = monitor.register_query(sf, k=K, n=n)
        ref = BruteForceReference(sf, N)
        rows = random_rows(75, 2, seed=batch_size + 100)
        for start in range(0, len(rows), batch_size):
            chunk = rows[start:start + batch_size]
            monitor.extend(chunk, batch_size=batch_size)
            for row in chunk:
                ref.append(row)
            assert [p.uid for p in monitor.results(handle)] == [
                p.uid for p in ref.top_k(K, n)
            ]


class TestBatchEdgeCases:
    def test_batch_larger_than_window(self):
        """Objects can arrive and expire inside one batch."""
        sf = k_closest_pairs(1)
        monitor = TopKPairsMonitor(window_size=5, num_attributes=1)
        handle = monitor.register_query(sf, k=2, n=5)
        ref = BruteForceReference(sf, 5)
        rows = random_rows(40, 1, seed=3)
        monitor.extend(rows, batch_size=12)
        for row in rows:
            ref.append(row)
        assert [p.uid for p in monitor.results(handle)] == [
            p.uid for p in ref.top_k(2, 5)
        ]
        monitor.check_invariants()

    def test_batch_size_one_equals_append(self):
        sf = k_closest_pairs(2)
        a = TopKPairsMonitor(10, 2)
        b = TopKPairsMonitor(10, 2)
        ha = a.register_query(sf, k=2)
        sf_b = k_closest_pairs(2)
        hb = b.register_query(sf_b, k=2)
        rows = random_rows(30, 2, seed=4)
        a.extend(rows, batch_size=1)
        b.extend(rows)
        assert [p.uid for p in a.results(ha)] == [
            p.uid for p in b.results(hb)
        ]

    def test_empty_batch(self):
        monitor = TopKPairsMonitor(10, 2)
        monitor.extend([], batch_size=4)
        assert len(monitor.manager) == 0

    def test_partial_final_batch(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(10, 2)
        monitor.register_query(sf, k=2)
        monitor.extend(random_rows(10, 2, seed=5), batch_size=4)  # 4+4+2
        assert len(monitor.manager) == 10
        monitor.check_invariants()
