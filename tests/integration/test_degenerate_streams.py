"""Degenerate and adversarial streams.

Tie-heavy inputs are where skyband algorithms classically go wrong: equal
scores stress footnote 1's perturbation, equal attribute values stress the
sorted lists and the TA iterators, and monotone streams stress the
staircase's geometry.  Every case is checked tick-by-tick against the
brute-force reference with all three maintenance strategies.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs, k_furthest_pairs


STRATEGIES = ["scase", "ta", "basic"]


def check_stream(rows, *, d=2, N=12, K=3, n=8, strategy="scase", sf=None):
    sf = sf if sf is not None else k_closest_pairs(d)
    monitor = TopKPairsMonitor(N, d, strategy=strategy)
    ref = BruteForceReference(sf, N)
    handle = monitor.register_query(sf, k=K, n=n)
    for i, row in enumerate(rows):
        monitor.append(row)
        ref.append(row)
        got = [p.uid for p in monitor.results(handle)]
        want = [p.uid for p in ref.top_k(K, n)]
        assert got == want, f"tick {i}: {got} != {want}"
    monitor.check_invariants()


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestConstantStream:
    def test_all_identical_objects(self, strategy):
        """Every pair has score 0: pure tie-breaking territory."""
        check_stream([(1.0, 1.0)] * 60, strategy=strategy)

    def test_two_alternating_values(self, strategy):
        rows = [(0.0, 0.0) if i % 2 else (1.0, 1.0) for i in range(60)]
        check_stream(rows, strategy=strategy)

    def test_identical_with_furthest_pairs(self, strategy):
        check_stream(
            [(5.0, 5.0)] * 50, strategy=strategy, sf=k_furthest_pairs(2)
        )


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestMonotoneStreams:
    def test_strictly_increasing(self, strategy):
        rows = [(float(i), float(2 * i)) for i in range(60)]
        check_stream(rows, strategy=strategy)

    def test_strictly_decreasing(self, strategy):
        rows = [(float(-i), float(-3 * i)) for i in range(60)]
        check_stream(rows, strategy=strategy)

    def test_sawtooth(self, strategy):
        rows = [(float(i % 7), float(i % 5)) for i in range(80)]
        check_stream(rows, strategy=strategy)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestDuplicateHeavy:
    def test_few_distinct_values(self, strategy):
        rng = random.Random(1)
        rows = [
            (rng.choice([0.0, 0.5, 1.0]), rng.choice([0.0, 1.0]))
            for _ in range(80)
        ]
        check_stream(rows, strategy=strategy)

    def test_duplicates_in_one_attribute_only(self, strategy):
        rng = random.Random(2)
        rows = [(1.0, rng.random()) for _ in range(60)]
        check_stream(rows, strategy=strategy)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestExtremeShapes:
    def test_k_larger_than_possible_pairs(self, strategy):
        """K exceeds the number of in-window pairs: everything is skyband."""
        check_stream(
            [(float(i), 0.0) for i in range(20)],
            N=5, K=40, n=5, strategy=strategy,
        )

    def test_window_of_two(self, strategy):
        check_stream(
            [(float(i % 3), 1.0) for i in range(30)],
            N=2, K=2, n=2, strategy=strategy,
        )

    def test_single_attribute(self, strategy):
        rng = random.Random(3)
        check_stream(
            [(rng.random(),) for _ in range(50)],
            d=1, strategy=strategy, sf=k_closest_pairs(1),
        )

    def test_extreme_magnitudes(self, strategy):
        rng = random.Random(4)
        rows = [
            (rng.choice([1e-12, 1e12, 0.0]), rng.choice([-1e9, 1e-9]))
            for _ in range(50)
        ]
        check_stream(rows, strategy=strategy)

    def test_negative_values(self, strategy):
        rng = random.Random(5)
        rows = [(rng.uniform(-10, -1), rng.uniform(-5, 5)) for _ in range(50)]
        check_stream(rows, strategy=strategy)
