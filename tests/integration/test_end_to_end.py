"""Cross-module integration tests: every algorithm in the framework must
agree with the brute-force ground truth (and hence with every other) on
long mixed streams, across strategies, scoring functions, distributions
and window shapes."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import BruteForceReference
from repro.baselines.naive import NaiveAlgorithm
from repro.baselines.supreme import SupremeAlgorithm
from repro.core.monitor import TopKPairsMonitor
from repro.datasets.sensor import SensorStreamSimulator
from repro.datasets.synthetic import DISTRIBUTIONS, make_stream
from repro.scoring.library import (
    paper_scoring_functions,
    sensor_scoring_function,
)


def take(stream, n):
    return list(itertools.islice(stream, n))


@pytest.mark.parametrize("strategy", ["scase", "ta", "basic"])
@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_strategies_agree_on_all_distributions(strategy, distribution):
    sf = paper_scoring_functions(2)[0]
    N, K = 20, 4
    monitor = TopKPairsMonitor(N, 2, strategy=strategy)
    ref = BruteForceReference(sf, N)
    handle = monitor.register_query(sf, k=K, n=14)
    for row in take(make_stream(distribution, 2, seed=5), 80):
        monitor.append(row)
        ref.append(row)
        got = [p.uid for p in monitor.results(handle)]
        assert got == [p.uid for p in ref.top_k(K, 14)]


def test_all_four_algorithms_agree_tick_by_tick():
    """Monitor (SCase), naive, supreme and brute force, in lock-step."""
    sf = paper_scoring_functions(2)[0]
    N, k = 18, 4
    monitor = TopKPairsMonitor(N, 2, strategy="scase")
    handle = monitor.register_query(sf, k=k, n=N)
    naive = NaiveAlgorithm(sf, K=k, window_size=N)
    supreme = SupremeAlgorithm(sf, K=k, window_size=N, num_attributes=2)
    ref = BruteForceReference(sf, N)
    for row in take(make_stream("uniform", 2, seed=6), 90):
        monitor.append(row)
        naive.append(row)
        supreme.append(row)
        ref.append(row)
        want = [p.uid for p in ref.top_k(k, N)]
        assert [p.uid for p in monitor.results(handle)] == want
        assert [p.uid for p in naive.top_k(k)] == want
        assert [p.uid for p in supreme.top_k(k)] == want


def test_sensor_workload_end_to_end():
    """The paper's real-data setup: sensor stream + anomaly function."""
    sf = sensor_scoring_function()
    N = 30
    monitor = TopKPairsMonitor(N, 3)
    ref = BruteForceReference(sf, N)
    handle = monitor.register_query(sf, k=5, n=20)
    sim = SensorStreamSimulator(seed=4, anomaly_rate=0.05)
    for values in take(sim.value_rows(), 100):
        row = values[:3]  # (time, temperature, humidity)
        monitor.append(row)
        ref.append(row)
    assert [p.uid for p in monitor.results(handle)] == [
        p.uid for p in ref.top_k(5, 20)
    ]
    monitor.check_invariants()


def test_hundred_random_queries_fig7_style():
    """Fig 7 issues 100 queries with random k <= K and n <= N."""
    sf = paper_scoring_functions(2)[0]
    N, K = 25, 8
    rng = random.Random(11)
    monitor = TopKPairsMonitor(N, 2)
    ref = BruteForceReference(sf, N)
    monitor.register_query(sf, k=K, n=N)  # pin the skyband depth at K
    for row in take(make_stream("uniform", 2, seed=12), 70):
        monitor.append(row)
        ref.append(row)
    for _ in range(100):
        k = rng.randint(1, K)
        n = rng.randint(2, N)
        got = monitor.snapshot_query(sf, k=k, n=n)
        assert [p.uid for p in got] == [p.uid for p in ref.top_k(k, n)], (k, n)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    N=st.integers(4, 20),
    K=st.integers(1, 6),
    ticks=st.integers(1, 60),
)
def test_property_monitor_matches_brute_force(seed, N, K, ticks):
    """For arbitrary (seed, N, K, stream length), continuous answers and
    skybands must match the ground truth at the end of the stream."""
    sf = paper_scoring_functions(2)[1]  # furthest pairs
    monitor = TopKPairsMonitor(N, 2, strategy="scase")
    ref = BruteForceReference(sf, N)
    n = max(2, N - 1)
    handle = monitor.register_query(sf, k=K, n=n)
    rng = random.Random(seed)
    for _ in range(ticks):
        row = (rng.random(), rng.random())
        monitor.append(row)
        ref.append(row)
    assert [p.uid for p in monitor.results(handle)] == [
        p.uid for p in ref.top_k(K, n)
    ]
    group = monitor._groups[(id(sf), None)]
    assert {p.uid for p in group.maintainer.skyband} == {
        p.uid for p in ref.skyband(K)
    }


def test_long_stream_stability():
    """A longer soak: invariants hold and answers stay exact after many
    window turnovers."""
    sf = paper_scoring_functions(3)[2]  # similar pairs, product combiner
    N = 15
    monitor = TopKPairsMonitor(N, 3)
    ref = BruteForceReference(sf, N)
    handle = monitor.register_query(sf, k=4, n=N)
    for i, row in enumerate(take(make_stream("correlated", 3, seed=13), 400)):
        monitor.append(row)
        ref.append(row)
        if i % 50 == 0:
            monitor.check_invariants()
            assert [p.uid for p in monitor.results(handle)] == [
                p.uid for p in ref.top_k(4, N)
            ]
    assert [p.uid for p in monitor.results(handle)] == [
        p.uid for p in ref.top_k(4, N)
    ]
