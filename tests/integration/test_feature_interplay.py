"""Interplay of the extensions: filters + callbacks + batching + time
windows, all at once, still exact against the ground truth."""

from __future__ import annotations

import random

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.core.pair import Pair
from repro.scoring.library import k_closest_pairs


def same_group(a, b) -> bool:
    return a.payload == b.payload


class TestFiltersWithBatching:
    def test_filtered_query_under_batched_ingestion(self):
        sf = k_closest_pairs(2)
        N, k, n = 16, 3, 12
        monitor = TopKPairsMonitor(N, 2)
        ref = BruteForceReference(sf, N, pair_filter=same_group)
        handle = monitor.register_query(sf, k=k, n=n,
                                        pair_filter=same_group)
        rng = random.Random(1)
        for _ in range(15):
            chunk = []
            for _ in range(5):
                row = (rng.random(), rng.random())
                category = rng.randrange(3)
                chunk.append((row, category))
            # batched into the monitor, per-row into the reference
            start_seq = monitor.manager.now_seq
            events = []
            for row, category in chunk:
                events.append(
                    monitor.manager.append(row, payload=category)
                )
                obj = ref.append(row)
                obj.payload = category
            # drive the groups through the batch path directly
            expired = [g for e in events for g in e.expired]
            survivors = [
                e.new for e in events
                if e.new.seq not in {g.seq for g in expired}
            ]
            for group in monitor._groups.values():
                delta = group.maintainer.on_batch(
                    monitor.manager, survivors, expired
                )
                for h in group.queries.values():
                    if h.state is not None:
                        h.state.apply(delta, group.maintainer.pst,
                                      monitor.manager.now_seq)
            got = [p.uid for p in monitor.results(handle)]
            want = [p.uid for p in ref.top_k(k, n)]
            assert got == want
        monitor.check_invariants()


class TestCallbacksWithFilters:
    def test_alerts_respect_the_filter(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(12, 2)
        alerts: list[Pair] = []

        def on_change(entered, left):
            alerts.extend(entered)

        monitor.register_query(
            sf, k=3, pair_filter=same_group, on_change=on_change
        )
        rng = random.Random(2)
        for _ in range(60):
            monitor.append(
                (rng.random(), rng.random()), payload=rng.randrange(2)
            )
        assert alerts
        for pair in alerts:
            assert pair.older.payload == pair.newer.payload


class TestTimeWindowWithCallbacks:
    def test_burst_expiry_triggers_departure_events(self):
        sf = k_closest_pairs(1)
        monitor = TopKPairsMonitor(
            window_size=1000, num_attributes=1, time_horizon=5.0
        )
        departures: list[Pair] = []

        def on_change(entered, left):
            departures.extend(left)

        handle = monitor.register_query(sf, k=2, on_change=on_change)
        monitor.append((1.0,), timestamp=0.0)
        monitor.append((1.1,), timestamp=0.5)
        monitor.append((1.2,), timestamp=1.0)
        assert len(monitor.results(handle)) == 2
        # A long gap expires everything; the old top pairs must be
        # reported as having left.
        monitor.append((9.0,), timestamp=100.0)
        assert departures
        assert monitor.results(handle) == []


class TestDynamicQueriesWithSharedSkyband:
    def test_register_unregister_churn_stays_exact(self):
        sf = k_closest_pairs(2)
        N = 14
        monitor = TopKPairsMonitor(N, 2)
        ref = BruteForceReference(sf, N)
        rng = random.Random(3)
        live = []
        for tick in range(120):
            row = (rng.random(), rng.random())
            monitor.append(row)
            ref.append(row)
            if tick % 9 == 0:
                k, n = rng.randint(1, 4), rng.randint(2, N)
                live.append(monitor.register_query(sf, k=k, n=n))
            if tick % 13 == 0 and live:
                monitor.unregister_query(live.pop(0))
            for handle in live:
                q = handle.query
                assert [p.uid for p in monitor.results(handle)] == [
                    p.uid for p in ref.top_k(q.k, q.n)
                ]
