"""Property test: per-tick, batched (several batch shapes including
batches larger than the window, forcing mid-batch expiries) and
bootstrap-from-scratch maintenance must all agree — with the runtime
auditor verifying every invariant along the way."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintenance import SCaseMaintainer, TAMaintainer
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs

_STRATEGIES = {"scase": SCaseMaintainer, "ta": TAMaintainer}


def _rows(count, seed):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(2)) for _ in range(count)]


def _bursty_timestamps(count, seed, horizon):
    """Mostly +1 steps with occasional jumps past ``horizon / 2`` — so
    some ticks (and some mid-batch positions) evict whole stretches of
    the time-based window at once."""
    rng = random.Random(seed)
    now, stamps = 0.0, []
    for _ in range(count):
        now += horizon / 2 + 1.0 if rng.random() < 0.12 else 1.0
        stamps.append(now)
    return stamps


def _run(strategy, rows, *, k, window, batch_size, horizon, timestamps):
    monitor = TopKPairsMonitor(
        window, 2, strategy=strategy, time_horizon=horizon,
        audit=True,
    )
    handle = monitor.register_query(k_closest_pairs(2), k=k)
    monitor.extend(rows, batch_size=batch_size, timestamps=timestamps)
    group = monitor._groups[next(iter(monitor._groups))]
    return monitor, handle, group.maintainer


def _snapshot(monitor, handle, maintainer):
    return (
        [p.uid for p in maintainer.skyband],
        maintainer.staircase.points(),
        [p.uid for p in monitor.results(handle)],
    )


@settings(max_examples=12, deadline=None)
@given(
    strategy=st.sampled_from(sorted(_STRATEGIES)),
    seed=st.integers(0, 10**6),
    count=st.integers(10, 45),
    k=st.integers(1, 5),
    window=st.integers(4, 12),
    timed=st.booleans(),
)
def test_property_batching_and_bootstrap_agree(
    strategy, seed, count, k, window, timed
):
    rows = _rows(count, seed)
    horizon = float(window) if timed else None
    timestamps = (
        _bursty_timestamps(count, seed + 1, horizon) if timed else None
    )
    # A real window cap even in timed mode, so both eviction mechanisms
    # are active at once.
    cap = window if not timed else 3 * window

    baseline = None
    # batch_size None = per-tick; N+3 forces arrive-and-expire within one
    # batch (the window is smaller than the batch).
    for batch_size in (None, 2, 7, cap + 3):
        monitor, handle, maintainer = _run(
            strategy, rows, k=k, window=cap, batch_size=batch_size,
            horizon=horizon, timestamps=list(timestamps) if timestamps
            else None,
        )
        state = _snapshot(monitor, handle, maintainer)
        if baseline is None:
            baseline = state
            # Bootstrap from scratch over the final window must rebuild
            # the identical skyband and staircase.
            fresh = _STRATEGIES[strategy](k_closest_pairs(2), maintainer.K)
            fresh.bootstrap(monitor.manager)
            assert [p.uid for p in fresh.skyband] == state[0]
            assert fresh.staircase.points() == state[1]
        else:
            assert state == baseline, f"batch_size={batch_size}"
