"""Tests for the pair-filter extension: queries restricted to a symmetric
predicate over the two objects (e.g. same-category only)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs, k_furthest_pairs


def same_category(a, b) -> bool:
    return a.payload == b.payload


def different_category(a, b) -> bool:
    return a.payload != b.payload


class _Feeder:
    """Streams categorized rows into a monitor and a reference."""

    def __init__(self, monitor, refs, seed=0, num_categories=3):
        self.monitor = monitor
        self.refs = refs
        self.rng = random.Random(seed)
        self.num_categories = num_categories

    def feed(self, count):
        for _ in range(count):
            row = (self.rng.random(), self.rng.random())
            category = self.rng.randrange(self.num_categories)
            self.monitor.append(row, payload=category)
            for ref in self.refs:
                obj = ref.append(row)
                obj.payload = category


def make_ref(sf, N, pair_filter):
    return BruteForceReference(sf, N, pair_filter=pair_filter)


@pytest.mark.parametrize("strategy", ["scase", "ta", "basic"])
class TestFilteredQueries:
    def test_same_category_matches_brute(self, strategy):
        sf = k_closest_pairs(2)
        N, k, n = 18, 3, 14
        monitor = TopKPairsMonitor(N, 2, strategy=strategy)
        ref = make_ref(sf, N, same_category)
        handle = monitor.register_query(
            sf, k=k, n=n, pair_filter=same_category
        )
        feeder = _Feeder(monitor, [ref], seed=1)
        for _ in range(20):
            feeder.feed(4)
            got = [p.uid for p in monitor.results(handle)]
            want = [p.uid for p in ref.top_k(k, n)]
            assert got == want
        monitor.check_invariants()

    def test_filtered_answers_respect_predicate(self, strategy):
        sf = k_furthest_pairs(2)
        monitor = TopKPairsMonitor(15, 2, strategy=strategy)
        handle = monitor.register_query(
            sf, k=4, pair_filter=different_category
        )
        feeder = _Feeder(monitor, [], seed=2)
        feeder.feed(40)
        for pair in monitor.results(handle):
            assert pair.older.payload != pair.newer.payload


class TestFilterSharing:
    def test_filtered_and_unfiltered_groups_are_separate(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(15, 2)
        plain = monitor.register_query(sf, k=2)
        filtered = monitor.register_query(sf, k=2, pair_filter=same_category)
        assert len(monitor._groups) == 2
        stats = monitor.stats()
        assert sorted(g["filtered"] for g in stats["groups"]) == [False, True]
        monitor.unregister_query(plain)
        monitor.unregister_query(filtered)
        assert len(monitor._groups) == 0

    def test_same_filter_instance_shares_group(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(15, 2)
        monitor.register_query(sf, k=2, pair_filter=same_category)
        monitor.register_query(sf, k=4, pair_filter=same_category)
        assert len(monitor._groups) == 1
        (group,) = monitor._groups.values()
        assert group.K == 4

    def test_both_groups_answer_correctly(self):
        sf = k_closest_pairs(2)
        N, k, n = 15, 3, 12
        monitor = TopKPairsMonitor(N, 2)
        ref_all = make_ref(sf, N, None)
        ref_same = make_ref(sf, N, same_category)
        h_all = monitor.register_query(sf, k=k, n=n)
        h_same = monitor.register_query(sf, k=k, n=n,
                                        pair_filter=same_category)
        feeder = _Feeder(monitor, [ref_all, ref_same], seed=3)
        feeder.feed(60)
        assert [p.uid for p in monitor.results(h_all)] == [
            p.uid for p in ref_all.top_k(k, n)
        ]
        assert [p.uid for p in monitor.results(h_same)] == [
            p.uid for p in ref_same.top_k(k, n)
        ]

    def test_snapshot_query_with_filter(self):
        sf = k_closest_pairs(2)
        N = 12
        monitor = TopKPairsMonitor(N, 2)
        ref = make_ref(sf, N, same_category)
        feeder = _Feeder(monitor, [ref], seed=4)
        feeder.feed(30)
        got = monitor.snapshot_query(sf, k=3, n=10,
                                     pair_filter=same_category)
        assert [p.uid for p in got] == [p.uid for p in ref.top_k(3, 10)]

    def test_restrictive_filter_can_empty_the_answer(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(10, 2)
        handle = monitor.register_query(
            sf, k=3, pair_filter=lambda a, b: False
        )
        feeder = _Feeder(monitor, [], seed=5)
        feeder.feed(20)
        assert monitor.results(handle) == []
        assert monitor.skyband_size(sf, pair_filter=handle.query.pair_filter) == 0
