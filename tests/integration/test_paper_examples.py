"""The paper's worked examples and stated claims, as executable tests."""

from __future__ import annotations

import random

from repro.baselines.brute import BruteForceReference
from repro.core.maintenance import SCaseMaintainer
from repro.core.pair import dominates, window_age_key_bound
from repro.core.skyband_update import update_skyband_and_staircase
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager
from repro.structures.pst import PrioritySearchTree

from tests.conftest import make_pair_at


class TestFigure1:
    """Six points in (age, score) space; p6 is dominated by p3 and p4."""

    POINTS = {
        "p1": (1, 9.0), "p2": (3, 6.0), "p3": (4, 4.0),
        "p4": (6, 2.0), "p5": (9, 1.0), "p6": (8, 5.0),
    }

    def pairs(self):
        return {name: make_pair_at(c) for name, c in self.POINTS.items()}

    def test_p6_has_exactly_two_dominators(self):
        pairs = self.pairs()
        dominators = [
            name
            for name, p in pairs.items()
            if name != "p6" and dominates(p, pairs["p6"])
        ]
        assert sorted(dominators) == ["p3", "p4"]

    def test_two_skyband_is_p1_to_p5(self):
        pairs = self.pairs()
        ordered = sorted(pairs.values(), key=lambda p: p.score_key)
        skyband, _ = update_skyband_and_staircase(ordered, K=2)
        assert {p.uid for p in skyband} == {
            pairs[n].uid for n in ("p1", "p2", "p3", "p4", "p5")
        }


class TestTheorem1And2:
    """K-skyband is sufficient (Thm 1) and minimal (Thm 2)."""

    def setup_method(self):
        self.sf = k_closest_pairs(2)
        self.N, self.K = 18, 4
        self.manager = StreamManager(self.N, 2)
        self.maintainer = SCaseMaintainer(self.sf, self.K)
        self.ref = BruteForceReference(self.sf, self.N)
        rng = random.Random(30)
        for _ in range(60):
            row = (rng.random(), rng.random())
            event = self.manager.append(row)
            self.maintainer.on_tick(self.manager, event.new, event.expired)
            self.ref.append(row)

    def test_theorem1_sufficiency(self):
        skyband_uids = {p.uid for p in self.maintainer.skyband}
        for k in range(1, self.K + 1):
            for n in range(2, self.N + 1):
                for pair in self.ref.top_k(k, n):
                    assert pair.uid in skyband_uids

    def test_theorem2_minimality(self):
        """Every skyband pair is the answer to *some* query
        Q(K, p.age, s) — so none can be dropped."""
        now = self.manager.now_seq
        for pair in self.maintainer.skyband:
            n = pair.age(now)
            answer_uids = {p.uid for p in self.ref.top_k(self.K, n)}
            assert pair.uid in answer_uids


class TestAlgorithm2Example:
    """Example 1's mechanics: a top-2 query over a window of size 7 on an
    eight-pair 2-skyband must skip the age-8 pair and return the two
    smallest in-window scores."""

    def test_example_mechanics(self):
        age_scores = [
            (1, 6.0), (2, 5.0), (3, 5.5), (4, 5.2),
            (5, 4.0), (6, 3.0), (7, 1.0), (8, 2.0),
        ]
        pairs = [make_pair_at(c, now_seq=100) for c in age_scores]
        pst = PrioritySearchTree(pairs)
        top2 = pst.top_k(2, window_age_key_bound(100, 7))
        assert [p.age(100) for p in top2] == [7, 6]
        assert [p.score for p in top2] == [1.0, 3.0]
        # The age-8 pair has the second-smallest score overall but is
        # outside the window, so it must not appear.
        assert all(p.age(100) <= 7 for p in top2)


class TestStorageLowerBound:
    """Theorem 4 flavour: dropping any in-window object breaks some
    future query, so the stream manager must keep the full window."""

    def test_every_window_object_can_form_the_top_pair(self):
        sf = k_closest_pairs(1)
        N = 10
        manager = StreamManager(N, 1)
        for v in range(N):
            manager.append((float(10 * v),))
        # For any surviving object, a newcomer at distance 0 makes it the
        # top-1 pair: so none was safe to delete.
        # objects()[0] is about to expire when the newcomer arrives, so
        # aim at the oldest *surviving* object.
        target = manager.objects()[1]
        maintainer = SCaseMaintainer(sf, K=1)
        maintainer.bootstrap(manager)
        event = manager.append((target.values[0],))
        maintainer.on_tick(manager, event.new, event.expired)
        best = maintainer.skyband[0]
        assert best.score == 0.0
        assert target.seq in (best.older.seq, best.newer.seq)
