"""Cross-cutting hypothesis property tests.

These cover interactions that the per-module property tests cannot:
arbitrary loose-monotonic trend combinations flowing through the pair
source into TA maintenance, and batched vs per-tick ingestion over
arbitrary streams and batch shapes.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import BruteForceReference
from repro.core.maintenance import TAMaintainer
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.combiners import SumCombiner
from repro.scoring.composite import GlobalScoringFunction
from repro.scoring.local import CustomLocal, Trend
from repro.stream.manager import StreamManager
from repro.stream.pair_source import iter_pairs_by_local_score

# The four loose-monotonic trend archetypes, as concrete functions whose
# declared trends are correct by construction.
_ARCHETYPES = {
    (Trend.INCREASING_AWAY, Trend.INCREASING_AWAY):
        lambda x, y: abs(x - y),
    (Trend.DECREASING_AWAY, Trend.DECREASING_AWAY):
        lambda x, y: -abs(x - y),
    (Trend.INCREASING_AWAY, Trend.DECREASING_AWAY):
        lambda x, y: x + y,
    (Trend.DECREASING_AWAY, Trend.INCREASING_AWAY):
        lambda x, y: -(x + y),
}

trend = st.sampled_from([Trend.INCREASING_AWAY, Trend.DECREASING_AWAY])
values = st.floats(-100, 100, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(
    above=trend,
    below=trend,
    stream=st.lists(values, min_size=0, max_size=25),
    newcomer=values,
)
def test_property_pair_source_ascending_for_all_trend_combos(
    above, below, stream, newcomer
):
    """Every (trend_above, trend_below) combination must yield partners
    in ascending local-score order, covering each partner exactly once."""
    local = CustomLocal(
        _ARCHETYPES[(above, below)], above, below, validate=False
    )
    manager = StreamManager(len(stream) + 1, 1)
    for v in stream:
        manager.append((v,))
    new = manager.append((newcomer,)).new
    out = list(iter_pairs_by_local_score(manager, new, 0, local))
    scores = [s for _, s in out]
    assert scores == sorted(scores)
    assert len(out) == len(stream)
    assert len({p.seq for p, _ in out}) == len(stream)
    for partner, score in out:
        assert math.isclose(
            score, local.score(newcomer, partner.values[0])
        )


@settings(max_examples=30, deadline=None)
@given(
    above=trend,
    below=trend,
    seed_rows=st.lists(
        st.tuples(values, values), min_size=10, max_size=40
    ),
    K=st.integers(1, 4),
)
def test_property_ta_exact_for_all_trend_combos(above, below, seed_rows, K):
    """TA maintenance stays exact for arbitrary trend combinations."""
    local_fn = _ARCHETYPES[(above, below)]
    N = 12

    def build_sf():
        return GlobalScoringFunction(
            [
                (0, CustomLocal(local_fn, above, below, validate=False)),
                (1, CustomLocal(local_fn, above, below, validate=False)),
            ],
            SumCombiner(),
        )

    sf = build_sf()
    manager = StreamManager(N, 2)
    maintainer = TAMaintainer(sf, K)
    ref = BruteForceReference(sf, N)
    for row in seed_rows:
        event = manager.append(row)
        maintainer.on_tick(manager, event.new, event.expired)
        ref.append(row)
    assert {p.uid for p in maintainer.skyband} == {
        p.uid for p in ref.skyband(K)
    }


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(st.tuples(values, values), min_size=1, max_size=60),
    batch_size=st.integers(2, 12),
    N=st.integers(3, 15),
    k=st.integers(1, 4),
)
def test_property_batched_equals_per_tick(rows, batch_size, N, k):
    """For arbitrary streams, windows and batch shapes, batched ingestion
    agrees with per-tick ingestion at every batch boundary."""
    from repro.scoring.library import k_closest_pairs

    sf_a, sf_b = k_closest_pairs(2), k_closest_pairs(2)
    n = max(2, N - 1)
    per_tick = TopKPairsMonitor(N, 2, strategy="scase")
    batched = TopKPairsMonitor(N, 2, strategy="scase")
    h_tick = per_tick.register_query(sf_a, k=k, n=n)
    h_batch = batched.register_query(sf_b, k=k, n=n)
    for start in range(0, len(rows), batch_size):
        chunk = rows[start:start + batch_size]
        for row in chunk:
            per_tick.append(row)
        batched.extend(chunk, batch_size=batch_size)
        assert [p.uid for p in batched.results(h_batch)] == [
            p.uid for p in per_tick.results(h_tick)
        ]
