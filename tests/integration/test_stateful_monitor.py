"""Hypothesis stateful test: the monitor as a state machine.

Hypothesis drives arbitrary interleavings of appends, query
registrations/unregistrations and snapshot queries; after every step each
live continuous query's answer must equal the brute-force ground truth,
and all structural invariants must hold.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.baselines.brute import BruteForceReference
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs, k_furthest_pairs

N = 12
MAX_K = 5


class MonitorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.monitor = TopKPairsMonitor(N, 2, strategy="scase")
        self.close = k_closest_pairs(2)
        self.far = k_furthest_pairs(2)
        self.refs = {
            id(self.close): BruteForceReference(self.close, N),
            id(self.far): BruteForceReference(self.far, N),
        }
        self.handles: list = []

    @rule(x=st.floats(0, 1), y=st.floats(0, 1))
    def append(self, x: float, y: float) -> None:
        self.monitor.append((x, y))
        for ref in self.refs.values():
            ref.append((x, y))

    @rule(
        k=st.integers(1, MAX_K),
        n=st.integers(2, N),
        use_far=st.booleans(),
        continuous=st.booleans(),
    )
    def register(self, k: int, n: int, use_far: bool,
                 continuous: bool) -> None:
        sf = self.far if use_far else self.close
        handle = self.monitor.register_query(
            sf, k=k, n=n, continuous=continuous
        )
        self.handles.append(handle)

    @rule(index=st.integers(0, 10))
    def unregister(self, index: int) -> None:
        if self.handles:
            handle = self.handles.pop(index % len(self.handles))
            self.monitor.unregister_query(handle)

    @rule(k=st.integers(1, MAX_K), n=st.integers(2, N),
          use_far=st.booleans())
    def snapshot(self, k: int, n: int, use_far: bool) -> None:
        sf = self.far if use_far else self.close
        got = self.monitor.snapshot_query(sf, k=k, n=n)
        want = self.refs[id(sf)].top_k(k, n)
        assert [p.uid for p in got] == [p.uid for p in want]

    @invariant()
    def answers_match_ground_truth(self) -> None:
        if not hasattr(self, "monitor"):
            return
        for handle in self.handles:
            query = handle.query
            got = self.monitor.results(handle)
            want = self.refs[id(query.scoring_function)].top_k(
                query.k, query.n
            )
            assert [p.uid for p in got] == [p.uid for p in want], query

    @invariant()
    def structures_consistent(self) -> None:
        if hasattr(self, "monitor"):
            self.monitor.check_invariants()


TestMonitorStateMachine = MonitorMachine.TestCase
TestMonitorStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
