"""Last-line-of-defense stress tests and a process-level CLI check."""

from __future__ import annotations

import random
import subprocess
import sys

from repro.baselines.brute import BruteForceReference
from repro.baselines.supreme import SupremeAlgorithm
from repro.core.monitor import TopKPairsMonitor
from repro.scoring.library import k_closest_pairs
from repro.structures.pst import PrioritySearchTree

from tests.conftest import make_pair_at


class TestPSTStress:
    def test_large_mixed_workload_with_heavy_age_ties(self):
        """Thousands of ops with only 8 distinct ages — the duplicate-age
        regime the skyband hits when one old object anchors many pairs."""
        rng = random.Random(99)
        pst = PrioritySearchTree()
        alive = []
        for step in range(3000):
            if rng.random() < 0.6 or not alive:
                pair = make_pair_at(
                    (rng.randint(1, 8), rng.uniform(0, 3)), now_seq=100
                )
                pst.insert(pair)
                alive.append(pair)
            else:
                pst.delete(alive.pop(rng.randrange(len(alive))))
        pst.check_invariants()
        assert len(pst) == len(alive)
        # Balance held up: height stays logarithmic-ish, not linear.
        assert pst.height() <= 4 * max(1, len(alive)).bit_length() + 8

    def test_monotone_insert_then_drain(self):
        pairs = [make_pair_at((i % 50 + 1, float(i)), now_seq=100)
                 for i in range(1, 800)]
        pst = PrioritySearchTree()
        for pair in pairs:
            pst.insert(pair)
        pst.check_invariants()
        for pair in pairs:
            pst.delete(pair)
        assert len(pst) == 0


class TestSupremeUnderChurn:
    def test_many_continuous_queries_stay_exact(self):
        sf = k_closest_pairs(2)
        N = 15
        supreme = SupremeAlgorithm(sf, K=6, window_size=N, num_attributes=2)
        ref = BruteForceReference(sf, N)
        rng = random.Random(5)
        specs = {qid: (rng.randint(1, 6), rng.randint(2, N))
                 for qid in range(12)}
        for qid, (k, n) in specs.items():
            supreme.register_continuous(qid, k, n)
        for _ in range(120):
            row = (rng.random(), rng.random())
            supreme.append(row)
            ref.append(row)
            for qid, (k, n) in specs.items():
                assert [p.uid for p in supreme.answer(qid)] == [
                    p.uid for p in ref.top_k(k, n)
                ]


class TestMonitorSoak:
    def test_long_run_with_everything_on(self):
        """Filters + callbacks + periodic snapshot queries + invariant
        checks over a longer stream."""
        sf = k_closest_pairs(2)
        N = 25
        monitor = TopKPairsMonitor(N, 2)
        ref = BruteForceReference(sf, N)
        changes = []
        handle = monitor.register_query(
            sf, k=4, n=20, on_change=lambda e, l: changes.append((e, l))
        )
        rng = random.Random(6)
        for tick in range(600):
            row = (rng.random(), rng.random())
            monitor.append(row, payload=tick % 4)
            ref.append(row)
            if tick % 100 == 99:
                monitor.check_invariants()
                assert [p.uid for p in monitor.results(handle)] == [
                    p.uid for p in ref.top_k(4, 20)
                ]
                got = monitor.snapshot_query(sf, k=2, n=10)
                assert [p.uid for p in got] == [
                    p.uid for p in ref.top_k(2, 10)
                ]
        assert changes  # the answer evolved over 600 ticks


class TestCLIProcess:
    def test_python_dash_m_repro_end_to_end(self):
        rng = random.Random(7)
        csv = "".join(
            f"{rng.random():.6f},{rng.random():.6f}\n" for _ in range(60)
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--columns", "2", "--k", "2",
             "--window", "30", "--report-every", "30"],
            input=csv, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "after 30 rows" in proc.stdout
        assert "done: 60 rows" in proc.stdout

    def test_cli_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "top-k pairs" in proc.stdout.lower()
