"""Integration tests for time-based sliding windows (paper §II-B remark).

A time-based window expires strictly oldest-first — the only property the
skyband machinery relies on — so the whole stack must work unchanged; the
ground truth is recomputed per tick over the surviving objects.
"""

from __future__ import annotations

import random

from repro.core.monitor import TopKPairsMonitor
from repro.core.pair import Pair
from repro.scoring.library import k_closest_pairs


def brute_top_k_timed(objects, sf, k, now_seq, n):
    pairs = [
        Pair(a, b, sf.score(a, b))
        for i, a in enumerate(objects)
        for b in objects[i + 1:]
        if a.age(now_seq) <= n and b.age(now_seq) <= n
    ]
    pairs.sort(key=lambda p: p.score_key)
    return pairs[:k]


class TestTimeBasedMonitoring:
    def test_continuous_query_over_time_window(self):
        sf = k_closest_pairs(2)
        horizon = 10.0
        monitor = TopKPairsMonitor(
            window_size=1000, num_attributes=2, time_horizon=horizon
        )
        handle = monitor.register_query(sf, k=3, n=1000)
        rng = random.Random(1)
        survivors = []
        t = 0.0
        for _ in range(120):
            t += rng.uniform(0.1, 1.5)
            row = (rng.random(), rng.random())
            event = monitor.append(row, timestamp=t)
            survivors.append(event.new)
            expired = {o.seq for o in event.expired}
            survivors = [o for o in survivors if o.seq not in expired]
            want = brute_top_k_timed(
                survivors, sf, 3, monitor.manager.now_seq, n=10**9
            )
            got = monitor.results(handle)
            assert [p.uid for p in got] == [p.uid for p in want]
        monitor.check_invariants()

    def test_burst_of_expiries(self):
        """A long quiet gap expires many objects in one tick."""
        sf = k_closest_pairs(1)
        monitor = TopKPairsMonitor(
            window_size=1000, num_attributes=1, time_horizon=5.0
        )
        handle = monitor.register_query(sf, k=2, n=1000)
        for i in range(10):
            monitor.append((float(i),), timestamp=float(i) * 0.1)
        event = monitor.append((99.0,), timestamp=100.0)
        assert len(event.expired) == 10
        assert monitor.results(handle) == []  # lone survivor: no pairs
        monitor.append((99.5,), timestamp=100.5)
        (best,) = monitor.results(handle)
        assert best.score == 0.5
        monitor.check_invariants()

    def test_time_window_skyband_consistency(self):
        sf = k_closest_pairs(2)
        monitor = TopKPairsMonitor(
            window_size=1000, num_attributes=2, time_horizon=7.0
        )
        monitor.register_query(sf, k=4, n=1000)
        rng = random.Random(3)
        t = 0.0
        for i in range(200):
            t += rng.uniform(0.05, 1.0)
            monitor.append((rng.random(), rng.random()), timestamp=t)
            if i % 40 == 0:
                monitor.check_invariants()
