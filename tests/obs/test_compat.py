"""Compatibility of the absorbed analysis layer (satellite 4).

The operation counters and the per-tick trace recorder moved from
``repro.analysis`` into ``repro.obs``; the old import paths must keep
working, and on a real run the machine-independent counters must agree
with the wall-clock registry wherever they count the same thing.
"""

from __future__ import annotations

import csv
import io
import random

from repro.core.maintenance import SCaseMaintainer
from repro.core.monitor import TopKPairsMonitor
from repro.obs import Counters, MetricsRecorder, TraceRecorder
from repro.scoring.library import k_closest_pairs
from repro.stream.manager import StreamManager


class TestShimImportPaths:
    def test_cost_model_shim_reexports_same_objects(self):
        from repro.analysis.cost_model import (
            Counters as ShimCounters,
            CountingScoringFunction as ShimCSF,
        )
        from repro.obs.cost_model import Counters, CountingScoringFunction

        assert ShimCounters is Counters
        assert ShimCSF is CountingScoringFunction

    def test_trace_shim_reexports_same_object(self):
        from repro.analysis.trace import TraceRecorder as ShimTraceRecorder
        from repro.obs.trace import TraceRecorder

        assert ShimTraceRecorder is TraceRecorder

    def test_package_level_exports(self):
        import repro
        import repro.obs as obs

        assert repro.MetricsRecorder is obs.MetricsRecorder
        assert obs.Counters is Counters
        assert obs.TraceRecorder is TraceRecorder


class TestTraceRecorderCsv:
    _HEADER = [
        "tick", "skyband_size", "staircase_size", "added", "removed",
        "expired", "score_evaluations", "pairs_considered",
        "candidate_pairs",
    ]

    def _traced_run(self, steps=60):
        counters = Counters()
        manager = StreamManager(20, 2)
        maintainer = SCaseMaintainer(k_closest_pairs(2), 3,
                                     counters=counters)
        trace = TraceRecorder(counters)
        rng = random.Random(17)
        for _ in range(steps):
            event = manager.append((rng.random(), rng.random()))
            delta = maintainer.on_tick(manager, event.new, event.expired)
            trace.observe(maintainer, delta)
        return trace, steps

    def test_to_csv_schema_and_rows(self):
        trace, steps = self._traced_run()
        buffer = io.StringIO()
        trace.to_csv(buffer)
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert list(rows[0].keys()) == self._HEADER
        assert len(rows) == steps == len(trace)
        assert [int(r["tick"]) for r in rows] == list(range(1, steps + 1))

    def test_counter_deltas_sum_back_to_totals(self):
        trace, _ = self._traced_run()
        totals = trace.counters.snapshot()
        for field in ("score_evaluations", "pairs_considered",
                      "candidate_pairs"):
            assert sum(trace.series(field)) == totals[field]


class TestCountersAgreeWithRegistry:
    """Both accounting layers on one monitor: overlapping tallies match."""

    def _dual_run(self, steps=150, window=50):
        counters = Counters()
        recorder = MetricsRecorder()
        monitor = TopKPairsMonitor(
            window, 2, counters=counters, recorder=recorder, seed=6
        )
        monitor.register_query(k_closest_pairs(2), k=4)
        rng = random.Random(23)
        for _ in range(steps):
            monitor.append((rng.random(), rng.random()))
        return counters, recorder.registry

    def test_structure_counters_match(self):
        counters, registry = self._dual_run()
        assert counters.pst_inserts \
            == registry.value("repro_pst_inserts_total") > 0
        assert counters.pst_deletes \
            == registry.value("repro_pst_deletes_total") > 0

    def test_skyband_counters_match(self):
        counters, registry = self._dual_run()
        assert counters.skyband_inserts \
            == registry.value("repro_skyband_inserts_total") > 0
        # The cost model charges every departure to skyband_removals;
        # the registry splits dominance removals from window expiries.
        assert counters.skyband_removals == (
            registry.value("repro_skyband_removals_total")
            + registry.value("repro_skyband_expirations_total")
        )

    def test_candidate_counters_match(self):
        counters, registry = self._dual_run()
        assert counters.candidate_pairs \
            == registry.value("repro_candidate_pairs_total") > 0
