"""Tests for the exporters (`repro.obs.export`)."""

from __future__ import annotations

import csv
import io
import json

from repro.obs import (
    MetricsRegistry,
    TickEvent,
    registry_to_json,
    to_prometheus,
    write_metrics_json,
    write_tick_csv,
    write_tick_jsonl,
)
from repro.obs.trace import TICK_FIELDS


def make_registry():
    registry = MetricsRegistry()
    registry.counter("repro_ticks_total", "stream ticks").inc(3)
    registry.gauge("repro_skyband_size").set(12)
    registry.histogram("repro_append_seconds", "per append",
                       buckets=(0.001, 0.01)).observe(0.005)
    family = registry.histogram("repro_phase_seconds", buckets=(1.0,),
                                labelnames=("phase",))
    family.labels("window").observe(0.5)
    return registry


def make_events():
    return [
        TickEvent(tick=i, seconds=0.01 * i, arrivals=1, evictions=0,
                  candidates=2, skyband_added=1, skyband_removed=0,
                  skyband_expired=0, pst_rebuilds=0, skyband_size=i,
                  staircase_size=1, window_occupancy=i,
                  phases={"window": 0.001})
        for i in range(1, 4)
    ]


class TestPrometheus:
    def test_exposition_structure(self):
        text = to_prometheus(make_registry())
        lines = text.splitlines()
        assert "# HELP repro_ticks_total stream ticks" in lines
        assert "# TYPE repro_ticks_total counter" in lines
        assert "repro_ticks_total 3" in lines
        assert "# TYPE repro_skyband_size gauge" in lines
        assert "repro_skyband_size 12" in lines
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative(self):
        lines = to_prometheus(make_registry()).splitlines()
        assert 'repro_append_seconds_bucket{le="0.001"} 0' in lines
        assert 'repro_append_seconds_bucket{le="0.01"} 1' in lines
        assert 'repro_append_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_append_seconds_sum 0.005" in lines
        assert "repro_append_seconds_count 1" in lines

    def test_labelled_histogram_children(self):
        lines = to_prometheus(make_registry()).splitlines()
        assert 'repro_phase_seconds_bucket{phase="window",le="1"} 1' in lines
        assert 'repro_phase_seconds_count{phase="window"} 1' in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("repro_g", labelnames=("name",)).labels(
            'we"ird\\x\n'
        ).set(1)
        text = to_prometheus(registry)
        assert 'name="we\\"ird\\\\x\\n"' in text

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestPrometheusEdgeCases:
    """Exposition-format corner cases: the escaping and formatting
    rules a scraper depends on (Prometheus text format 0.0.4)."""

    @staticmethod
    def _gauge_line(value: str) -> str:
        registry = MetricsRegistry()
        registry.gauge("repro_g", labelnames=("name",)).labels(value).set(1)
        text = to_prometheus(registry)
        (line,) = [l for l in text.splitlines() if l.startswith("repro_g{")]
        return line

    def test_backslash_escaped(self):
        assert self._gauge_line("a\\b") == 'repro_g{name="a\\\\b"} 1'

    def test_newline_escaped(self):
        assert self._gauge_line("a\nb") == 'repro_g{name="a\\nb"} 1'

    def test_quote_escaped(self):
        assert self._gauge_line('a"b') == 'repro_g{name="a\\"b"} 1'

    def test_backslash_escaped_before_quote_and_newline(self):
        # Escaping must run backslash-first: the literal input \" must
        # become \\\" (escaped backslash, escaped quote), never \\"
        # re-escaped into a double-escape of the whole sequence.
        assert self._gauge_line('\\"') == 'repro_g{name="\\\\\\""} 1'
        # A literal backslash-n stays distinguishable from a newline:
        # the former escapes to \\n (three chars), the latter to \n.
        assert self._gauge_line("\\n") == 'repro_g{name="\\\\n"} 1'
        assert self._gauge_line("\n") == 'repro_g{name="\\n"} 1'

    def test_inf_bucket_always_last_and_spelled_plus_inf(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(0.5,)).observe(2.0)
        buckets = [
            line for line in to_prometheus(registry).splitlines()
            if line.startswith("repro_h_bucket")
        ]
        assert buckets == [
            'repro_h_bucket{le="0.5"} 0',
            'repro_h_bucket{le="+Inf"} 1',
        ]

    def test_inf_bucket_on_labelled_histogram(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_h", buckets=(1.0,), labelnames=("op",)
        )
        family.labels("ingest").observe(5.0)
        lines = to_prometheus(registry).splitlines()
        assert 'repro_h_bucket{op="ingest",le="+Inf"} 1' in lines

    def test_integral_bounds_render_without_trailing_zeroes(self):
        # %g formatting: le="1", not le="1.0" — keeps series names
        # stable however the bucket bounds were spelled in Python.
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(1.0, 2.5)).observe(0.1)
        lines = to_prometheus(registry).splitlines()
        assert 'repro_h_bucket{le="1"} 1' in lines
        assert 'repro_h_bucket{le="2.5"} 1' in lines

    def test_empty_registry_json_snapshot(self):
        assert registry_to_json(MetricsRegistry()) == {"metrics": {}}

    def test_empty_registry_roundtrip_is_stable(self):
        # An empty exposition is the empty string (no trailing newline):
        # curl on a fresh sidecar yields a valid, zero-series scrape.
        text = to_prometheus(MetricsRegistry())
        assert text == ""
        assert text.splitlines() == []


class TestTickStreams:
    def test_jsonl_one_parseable_record_per_tick(self):
        buffer = io.StringIO()
        count = write_tick_jsonl(make_events(), buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [r["tick"] for r in records] == [1, 2, 3]
        assert records[0]["phases"] == {"window": 0.001}

    def test_csv_schema_and_flat_phases(self):
        buffer = io.StringIO()
        count = write_tick_csv(make_events(), buffer)
        assert count == 3
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert tuple(rows[0].keys()) == TICK_FIELDS
        assert rows[0]["phase_window"] == "0.001"
        assert rows[0]["phase_queries"] == "0.0"


class TestJsonSnapshot:
    def test_registry_to_json(self):
        payload = registry_to_json(make_registry(), extra={"steps": 3})
        assert payload["steps"] == 3
        assert payload["metrics"]["repro_ticks_total"] == 3
        json.dumps(payload)  # fully JSON-able

    def test_write_metrics_json_path_and_handle(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "metrics.json"
        write_metrics_json(registry, str(path))
        from_path = json.loads(path.read_text())
        buffer = io.StringIO()
        write_metrics_json(registry, buffer)
        from_handle = json.loads(buffer.getvalue())
        assert from_path == from_handle
        assert from_path["metrics"]["repro_skyband_size"] == 12


class _Interrupter:
    """Yields ``good`` events, then raises KeyboardInterrupt (a Ctrl-C
    landing mid-stream)."""

    def __init__(self, events, good):
        self.events = events
        self.good = good

    def __iter__(self):
        for index, event in enumerate(self.events):
            if index == self.good:
                raise KeyboardInterrupt
            yield event


class _FlushTracker(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


class TestInterruptSafety:
    def test_jsonl_interrupt_leaves_valid_prefix_and_flushes(self):
        events = make_events()
        handle = _FlushTracker()
        try:
            write_tick_jsonl(_Interrupter(events, 2), handle)
        except KeyboardInterrupt:
            pass
        else:
            raise AssertionError("KeyboardInterrupt must propagate")
        lines = handle.getvalue().splitlines()
        assert len(lines) == 2
        for line in lines:  # every written record is complete JSON
            json.loads(line)
        assert handle.flushes >= 1

    def test_csv_interrupt_leaves_complete_rows(self):
        events = make_events()
        handle = _FlushTracker()
        try:
            write_tick_csv(_Interrupter(events, 1), handle)
        except KeyboardInterrupt:
            pass
        else:
            raise AssertionError("KeyboardInterrupt must propagate")
        parsed = list(csv.reader(io.StringIO(handle.getvalue())))
        assert parsed[0] == list(TICK_FIELDS)
        assert len(parsed) == 2  # header + one complete row
        assert len(parsed[1]) == len(TICK_FIELDS)
        assert handle.flushes >= 1

    def test_jsonl_single_write_per_record(self):
        events = make_events()

        class WriteCounter(io.StringIO):
            writes = 0

            def write(self, text):
                WriteCounter.writes += 1
                return super().write(text)

        handle = WriteCounter()
        count = write_tick_jsonl(events, handle)
        assert count == len(events)
        # one write per record: no interleaving point inside a line
        assert WriteCounter.writes == len(events)
