"""Tests for the flight recorder and its ring log
(`repro.obs.flight`)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.flight import FlightRecorder, RingLog


class TestRingLog:
    def test_append_returns_one_based_seq(self):
        ring = RingLog()
        assert ring.append({"a": 1}) == 1
        assert ring.append({"a": 2}) == 2
        assert ring.seq == 2
        assert len(ring) == 2

    def test_bounded_but_seq_absolute(self):
        ring = RingLog(capacity=2)
        for index in range(5):
            ring.append({"i": index})
        assert len(ring) == 2
        assert ring.seq == 5
        assert ring.snapshot() == [{"i": 3}, {"i": 4}]

    def test_since_resumes_from_cursor(self):
        ring = RingLog()
        ring.append({"i": 0})
        ring.append({"i": 1})
        records, cursor = ring.since(0)
        assert records == [{"i": 0}, {"i": 1}]
        records, cursor = ring.since(cursor)
        assert records == []
        ring.append({"i": 2})
        records, cursor = ring.since(cursor)
        assert records == [{"i": 2}]
        assert cursor == 3

    def test_since_survives_eviction(self):
        # A cursor older than the ring's oldest retained record yields
        # everything still retained — the poller misses evicted entries
        # but never crashes or double-reads.
        ring = RingLog(capacity=2)
        for index in range(5):
            ring.append({"i": index})
        records, cursor = ring.since(1)
        assert records == [{"i": 3}, {"i": 4}]
        assert cursor == 5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingLog(0)


class TestFlightRecording:
    def test_record_kinds(self):
        flight = FlightRecorder()
        flight.record_span({"name": "tick", "trace": "t"})
        flight.record_tick({"tick": 7, "rows": 3})
        flight.record_error("bad_request", "nope", op="ingest",
                            peer="127.0.0.1:9")
        kinds = [r["kind"] for r in flight.ring.snapshot()]
        assert kinds == ["span", "tick", "error"]
        error = flight.ring.snapshot()[2]
        assert error["code"] == "bad_request"
        assert error["op"] == "ingest"
        assert error["peer"] == "127.0.0.1:9"

    def test_error_optional_fields_omitted(self):
        flight = FlightRecorder()
        flight.record_error("internal", "boom")
        record = flight.ring.snapshot()[0]
        assert "op" not in record and "peer" not in record

    def test_is_slow_tick(self):
        assert not FlightRecorder().is_slow_tick(1e9)  # no threshold
        flight = FlightRecorder(slow_tick_seconds=0.5)
        assert flight.is_slow_tick(0.6)
        assert not flight.is_slow_tick(0.5)


class TestDumping:
    def test_plan_dump_paths_counter_based(self, tmp_path):
        flight = FlightRecorder(dump_dir=str(tmp_path),
                                min_dump_interval=0.0)
        first = flight.plan_dump("error_bad_request")
        second = flight.plan_dump("sigusr2")
        assert first.endswith("flight-0001-error_bad_request.jsonl")
        assert second.endswith("flight-0002-sigusr2.jsonl")

    def test_rate_limit_suppresses_then_force_bypasses(self):
        flight = FlightRecorder(min_dump_interval=3600.0)
        assert flight.plan_dump("first") is not None
        assert flight.plan_dump("second") is None
        assert flight.dumps_suppressed == 1
        assert flight.plan_dump("sigusr2", force=True) is not None

    def test_dump_writes_header_then_records(self, tmp_path):
        flight = FlightRecorder(dump_dir=str(tmp_path))
        flight.record_tick({"tick": 1, "rows": 2})
        flight.record_error("internal", "x")
        path = tmp_path / "out.jsonl"
        count = flight.dump(str(path), reason="test")
        assert count == 2
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0] == {"kind": "flight_dump", "reason": "test",
                            "records": 2, "newest_seq": 2}
        assert lines[1]["kind"] == "tick"
        assert lines[2]["kind"] == "error"
        assert flight.dumps_written == 1

    def test_dump_to_handle(self):
        flight = FlightRecorder()
        flight.record_tick({"tick": 1})
        buffer = io.StringIO()
        assert flight.dump(buffer) == 1
        header = json.loads(buffer.getvalue().splitlines()[0])
        assert header["reason"] == "manual"

    def test_dump_creates_directories(self, tmp_path):
        flight = FlightRecorder()
        path = tmp_path / "nested" / "dir" / "f.jsonl"
        flight.dump(str(path))
        assert path.exists()

    def test_span_sink_integration(self):
        # The serve wiring: SpanRecorder.sink = flight.record_span tees
        # every finished span into the flight ring.
        from repro.obs.spans import SpanRecorder

        flight = FlightRecorder()
        spans = SpanRecorder(sink=flight.record_span)
        with spans.span("op:ingest", trace="t"):
            pass
        (record,) = flight.ring.snapshot()
        assert record["kind"] == "span"
        assert record["name"] == "op:ingest"
        assert record["trace"] == "t"
