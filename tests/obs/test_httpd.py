"""Tests for the telemetry HTTP sidecar (`repro.obs.httpd`).

Each test boots a real :class:`ObsHTTPServer` on a loopback port inside
a private event loop and talks plain HTTP/1.0 to it — no HTTP client
library, matching the server's own no-framework stance.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.flight import FlightRecorder, RingLog
from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, ObsHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder


async def http_get(port: int, target: str) -> tuple[int, dict, bytes]:
    """One HTTP/1.0 GET: ``(status, headers, body)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {target} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def run(coro):
    return asyncio.run(coro)


def serve(test, **kwargs):
    """Boot a sidecar, run ``test(server)``, stop it."""
    async def body():
        server = ObsHTTPServer(**kwargs)
        await server.start()
        try:
            return await test(server)
        finally:
            await server.stop()
    return run(body())


class TestLifecycle:
    def test_start_resolves_port_and_url(self):
        async def check(server):
            assert server.port != 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        serve(check)

    def test_stop_is_idempotent(self):
        async def check(server):
            await server.stop()
            await server.stop()
        serve(check)


class TestRoutes:
    def test_metrics_prometheus_content_type(self):
        registry = MetricsRegistry()
        registry.counter("repro_ticks_total").inc(3)

        async def check(server):
            status, headers, body = await http_get(server.port, "/metrics")
            assert status == 200
            assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
            assert b"repro_ticks_total 3" in body
            assert headers["connection"] == "close"
        serve(check, registry=registry)

    def test_metrics_without_registry_is_empty_200(self):
        async def check(server):
            status, _headers, body = await http_get(server.port, "/metrics")
            assert status == 200
            assert body == b""
        serve(check)

    def test_healthz_merges_probe_and_flight(self):
        flight = FlightRecorder()
        flight.record_error("internal", "x")

        async def check(server):
            status, _h, body = await http_get(server.port, "/healthz")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["window_size"] == 42
            assert payload["flight"]["records"] == 1
            assert payload["flight"]["dumps_written"] == 0
        serve(check, health=lambda: {"window_size": 42}, flight=flight)

    def test_varz_json_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("repro_skyband_size").set(7)

        async def check(server):
            status, headers, body = await http_get(server.port, "/varz")
            assert status == 200
            assert headers["content-type"].startswith("application/json")
            assert json.loads(body)["metrics"]["repro_skyband_size"] == 7
        serve(check, registry=registry)

    def test_varz_without_registry(self):
        async def check(server):
            _s, _h, body = await http_get(server.port, "/varz")
            assert json.loads(body) == {"metrics": {}}
        serve(check)

    def test_tracez_recent_and_filtered(self):
        spans = SpanRecorder()
        spans.span("op:ingest", trace="aaaa").finish()
        spans.span("tick", trace="aaaa").finish()
        spans.span("op:stats", trace="bbbb").finish()

        async def check(server):
            _s, _h, body = await http_get(server.port, "/tracez")
            payload = json.loads(body)
            assert payload["enabled"] is True
            assert payload["finished_total"] == 3
            assert [s["name"] for s in payload["spans"]] == [
                "op:stats", "tick", "op:ingest"
            ]
            _s, _h, body = await http_get(
                server.port, "/tracez?trace=aaaa"
            )
            filtered = json.loads(body)["spans"]
            assert [s["name"] for s in filtered] == ["op:ingest", "tick"]
            _s, _h, body = await http_get(server.port, "/tracez?limit=1")
            assert len(json.loads(body)["spans"]) == 1
        serve(check, spans=spans)

    def test_tracez_default_null_recorder(self):
        async def check(server):
            _s, _h, body = await http_get(server.port, "/tracez")
            payload = json.loads(body)
            assert payload == {"spans": [], "finished_total": 0,
                               "enabled": False}
        serve(check)

    def test_unknown_path_404(self):
        async def check(server):
            status, _h, body = await http_get(server.port, "/nope")
            assert status == 404
            assert json.loads(body)["error"] == "not_found"
        serve(check)

    def test_non_get_405(self):
        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b"405" in raw.split(b"\r\n", 1)[0]
        serve(check)

    def test_render_failure_is_500_not_crash(self):
        async def check(server):
            status, _h, body = await http_get(server.port, "/healthz")
            assert status == 500
            payload = json.loads(body)
            assert payload["error"] == "internal"
            assert payload["type"] == "RuntimeError"
        serve(check, health=lambda: (_ for _ in ()).throw(
            RuntimeError("probe died")))

    def test_bad_query_params_fall_back_to_defaults(self):
        spans = SpanRecorder()
        spans.span("x").finish()

        async def check(server):
            status, _h, body = await http_get(
                server.port, "/tracez?limit=wat"
            )
            assert status == 200
            assert len(json.loads(body)["spans"]) == 1
        serve(check, spans=spans)


class TestTickStream:
    def test_backlog_and_limit(self):
        ticks = RingLog()
        for index in range(5):
            ticks.append({"tick": index})

        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /ticks?backlog=3&limit=2 HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 5.0)
            writer.close()
            await writer.wait_closed()
            _head, _, body = raw.partition(b"\r\n\r\n")
            records = [json.loads(line)
                       for line in body.splitlines()]
            # backlog=3 starts at tick 2; limit=2 closes after two.
            assert records == [{"tick": 2}, {"tick": 3}]
        serve(check, ticks=ticks)

    def test_stream_sees_new_appends(self):
        ticks = RingLog()

        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /ticks?limit=1 HTTP/1.0\r\n\r\n")
            await writer.drain()
            await asyncio.sleep(server.poll_interval)
            ticks.append({"tick": 99})
            raw = await asyncio.wait_for(reader.read(), 5.0)
            writer.close()
            await writer.wait_closed()
            body = raw.partition(b"\r\n\r\n")[2]
            assert json.loads(body.splitlines()[0]) == {"tick": 99}
        serve(check, ticks=ticks)

    def test_stop_terminates_open_stream(self):
        # An unbounded stream (no limit) must end within about one poll
        # interval of stop() — the Python 3.12 wait_closed() hang this
        # design exists to avoid.
        ticks = RingLog()

        async def body():
            server = ObsHTTPServer(ticks=ticks, poll_interval=0.05)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /ticks HTTP/1.0\r\n\r\n")
            await writer.drain()
            await asyncio.sleep(0.1)
            await asyncio.wait_for(server.stop(), 5.0)
            await asyncio.wait_for(reader.read(), 5.0)  # EOF, no hang
            writer.close()
            await writer.wait_closed()
        run(body())

    def test_ticks_without_ring_closes_cleanly(self):
        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /ticks HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 5.0)
            writer.close()
            await writer.wait_closed()
            assert raw.startswith(b"HTTP/1.0 200")
            assert raw.partition(b"\r\n\r\n")[2] == b""
        serve(check)


class TestRobustness:
    def test_garbage_request_line_ignored(self):
        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 5.0)
            writer.close()
            await writer.wait_closed()
            assert raw == b""
            # The server survives to answer the next request.
            status, _h, _b = await http_get(server.port, "/healthz")
            assert status == 200
        serve(check)

    def test_client_disconnect_mid_request_tolerated(self):
        async def check(server):
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /metr")  # no newline, then vanish
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            status, _h, _b = await http_get(server.port, "/metrics")
            assert status == 200
        serve(check)
