"""End-to-end instrumentation: a monitored stream populates the
registry and the tick trace coherently."""

from __future__ import annotations

import random

import pytest

from repro.core.monitor import TopKPairsMonitor
from repro.obs import MetricsRecorder
from repro.scoring.library import k_closest_pairs


STEPS = 120
WINDOW = 40


@pytest.fixture(scope="module")
def run():
    recorder = MetricsRecorder()
    monitor = TopKPairsMonitor(WINDOW, 2, recorder=recorder, seed=3)
    handle = monitor.register_query(k_closest_pairs(2), k=4)
    rng = random.Random(9)
    for _ in range(STEPS):
        monitor.append((rng.random(), rng.random()))
    monitor.results(handle)
    return monitor, recorder, handle


class TestRegistryCoherence:
    def test_tick_and_object_counts(self, run):
        _, recorder, _ = run
        registry = recorder.registry
        assert registry.value("repro_ticks_total") == STEPS
        assert registry.value("repro_objects_total") == STEPS
        assert registry.value("repro_evictions_total") == STEPS - WINDOW

    def test_gauges_match_monitor_stats(self, run):
        monitor, recorder, _ = run
        registry = recorder.registry
        stats = monitor.stats()
        assert registry.value("repro_window_occupancy") \
            == stats["window_occupancy"]
        assert registry.value("repro_skyband_size") \
            == sum(g["skyband_size"] for g in stats["groups"])
        assert registry.value("repro_staircase_size") \
            == sum(g["staircase_size"] for g in stats["groups"])

    def test_append_histogram_one_observation_per_tick(self, run):
        _, recorder, _ = run
        append = recorder.registry.get("repro_append_seconds").solo
        assert append.count == STEPS
        assert append.sum > 0.0

    def test_results_latency_observed(self, run):
        _, recorder, _ = run
        assert recorder.registry.get("repro_results_seconds").solo.count == 1

    def test_structure_activity_recorded(self, run):
        _, recorder, _ = run
        registry = recorder.registry
        # Two attribute skip lists, each traversed on insert and removal.
        assert registry.value("repro_skiplist_node_traversals_total") > 0
        assert registry.value("repro_pst_inserts_total") \
            >= registry.value("repro_skyband_inserts_total") > 0
        assert registry.value("repro_sweeps_total") > 0
        assert registry.value("repro_pst_rebuilds_total") > 0
        rebuild_size = registry.get("repro_pst_rebuild_size").solo
        assert rebuild_size.count \
            == registry.value("repro_pst_rebuilds_total")

    def test_phase_family_covers_pipeline(self, run):
        _, recorder, _ = run
        family = recorder.registry.get("repro_phase_seconds")
        observed = {labels[0] for labels, _ in family.children()}
        assert {"window", "expire", "generate", "insert",
                "queries"} <= observed


class TestTickTrace:
    def test_one_event_per_tick_in_order(self, run):
        _, recorder, _ = run
        assert len(recorder.events) == STEPS
        assert [e.tick for e in recorder.events] \
            == list(range(1, STEPS + 1))

    def test_events_sum_to_registry_counters(self, run):
        _, recorder, _ = run
        registry = recorder.registry
        events = recorder.events
        assert sum(e.arrivals for e in events) \
            == registry.value("repro_objects_total")
        assert sum(e.candidates for e in events) \
            == registry.value("repro_candidate_pairs_total")
        assert sum(e.skyband_added for e in events) \
            == registry.value("repro_skyband_inserts_total")
        assert sum(e.pst_rebuilds for e in events) \
            == registry.value("repro_pst_rebuilds_total")

    def test_final_event_matches_gauges(self, run):
        _, recorder, _ = run
        last = recorder.events[-1]
        registry = recorder.registry
        assert last.skyband_size == registry.value("repro_skyband_size")
        assert last.window_occupancy \
            == registry.value("repro_window_occupancy")


class TestStatsIncludeMetrics:
    def test_metrics_key_present_and_schema(self, run):
        monitor, _, _ = run
        stats = monitor.stats(include_metrics=True)
        metrics = stats["metrics"]
        assert metrics["repro_ticks_total"] == STEPS
        append = metrics["repro_append_seconds"]
        assert set(append) == {"count", "sum", "buckets"}
        assert append["buckets"]["+Inf"] == STEPS
        # Plain stats() stays metrics-free.
        assert "metrics" not in monitor.stats()

    def test_null_recorder_yields_empty_metrics(self):
        monitor = TopKPairsMonitor(10, 2)
        assert monitor.stats(include_metrics=True)["metrics"] == {}


class TestBatchedIngestion:
    def test_batches_count_as_single_ticks(self):
        recorder = MetricsRecorder()
        monitor = TopKPairsMonitor(30, 2, recorder=recorder, seed=1)
        monitor.register_query(k_closest_pairs(2), k=3)
        rng = random.Random(4)
        rows = [(rng.random(), rng.random()) for _ in range(80)]
        monitor.extend(rows, batch_size=20)
        registry = recorder.registry
        assert registry.value("repro_ticks_total") == 4
        assert registry.value("repro_objects_total") == 80
        assert len(recorder.events) == 4
        assert recorder.events[0].arrivals == 20


class TestDisabledMonitorUntouched:
    def test_default_monitor_exposes_null_recorder(self):
        monitor = TopKPairsMonitor(10, 2)
        assert monitor.recorder.enabled is False
        assert monitor.recorder.registry is None

    def test_answers_identical_with_and_without_recorder(self):
        rng = random.Random(11)
        rows = [(rng.random(), rng.random()) for _ in range(60)]
        answers = []
        for recorder in (None, MetricsRecorder()):
            monitor = TopKPairsMonitor(25, 2, recorder=recorder, seed=5)
            handle = monitor.register_query(k_closest_pairs(2), k=3)
            for row in rows:
                monitor.append(row)
            answers.append([
                (p.older.seq, p.newer.seq) for p in monitor.results(handle)
            ])
        assert answers[0] == answers[1]
