"""Tests for the metrics registry (`repro.obs.metrics`)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("repro_things_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_things_total")
        with pytest.raises(InvalidParameterError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_size")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12


class TestHistogram:
    def test_observe_lands_in_inclusive_upper_bound(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            hist.observe(value)
        # per-interval: (<=1): 0.5, 1.0 | (<=2): 1.5 | (<=4): 4.0 | +Inf: 99
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)

    def test_cumulative_ends_with_inf_total(self):
        hist = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_mean(self):
        hist = Histogram((1.0,))
        assert hist.mean() == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean() == pytest.approx(3.0)

    def test_snapshot_shape(self):
        hist = Histogram((0.5, 1.0))
        hist.observe(0.25)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(0.25)
        assert snap["buckets"] == {"0.5": 1, "1": 1, "+Inf": 1}

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(InvalidParameterError):
            Histogram((2.0, 1.0))
        with pytest.raises(InvalidParameterError):
            Histogram(())

    def test_default_bucket_sets_are_ascending(self):
        for buckets in (DEFAULT_SECONDS_BUCKETS, DEFAULT_SIZE_BUCKETS):
            assert list(buckets) == sorted(set(buckets))


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_a_total", "help text")
        b = registry.counter("repro_a_total")
        assert a is b
        assert len(registry) == 1
        assert "repro_a_total" in registry

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(InvalidParameterError):
            registry.gauge("repro_a_total")

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(1.0, 2.0))
        with pytest.raises(InvalidParameterError):
            registry.histogram("repro_h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError):
            registry.counter("0bad")
        with pytest.raises(InvalidParameterError):
            registry.counter("repro_ok", labelnames=("bad-label",))

    def test_labelled_family_children(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_phase_seconds", buckets=(1.0,), labelnames=("phase",)
        )
        family.labels("window").observe(0.5)
        family.labels(phase="window").observe(0.7)
        family.labels("insert").observe(2.0)
        assert family.labels("window").count == 2
        assert dict(family.children())[("insert",)].count == 1
        with pytest.raises(InvalidParameterError):
            family.labels("a", "b")
        with pytest.raises(InvalidParameterError):
            family.labels(bogus="x")

    def test_value_accessor(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(7)
        gauge_family = registry.gauge("repro_g", labelnames=("kind",))
        gauge_family.labels("x").set(3)
        assert registry.value("repro_a_total") == 7
        assert registry.value("repro_g", "x") == 3

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(2)
        registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        family = registry.gauge("repro_g", labelnames=("kind",))
        family.labels("x").set(5)
        snap = registry.snapshot()
        assert snap["repro_a_total"] == 2
        assert snap["repro_h"]["count"] == 1
        assert snap["repro_g"] == {"kind=x": 5}
        registry.reset()
        snap = registry.snapshot()
        assert snap["repro_a_total"] == 0
        assert snap["repro_h"]["count"] == 0
        assert snap["repro_g"] == {"kind=x": 0}
