"""Tests for the recorder layer (`repro.obs.recorder`)."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_RECORDER,
    MetricsRecorder,
    MetricsRegistry,
    NullRecorder,
    TickEvent,
    Timer,
    timed,
)


class TestNullRecorder:
    def test_disabled_is_a_class_attribute(self):
        # The hot-path guard `if obs.enabled:` must not hit __getattr__
        # machinery or per-instance state.
        assert "enabled" in NullRecorder.__dict__
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.registry is None
        assert NULL_RECORDER.events == ()

    def test_every_hook_is_a_no_op(self):
        obs = NullRecorder()
        obs.begin_tick()
        obs.phase("window", 0.1)
        obs.on_window(1, 2)
        obs.on_candidates(3)
        obs.on_skyband_delta(1, 2, 3)
        obs.on_pst_insert()
        obs.on_pst_delete()
        obs.on_pst_rebuild(10, 0.01, partial=True)
        obs.on_skiplist_traversal(5)
        obs.on_sweep(10, 4)
        obs.observe("repro_x_seconds", 0.5)
        obs.observe_results(0.5)
        obs.end_tick(0.5, now_seq=1, skyband_size=2)

    def test_hook_protocol_matches_metrics_recorder(self):
        # Anything the instrumented code calls on a MetricsRecorder must
        # exist on the NullRecorder too, or disabled runs would crash.
        null_api = {n for n in dir(NullRecorder) if not n.startswith("_")}
        live_api = {n for n in dir(MetricsRecorder) if not n.startswith("_")}
        assert live_api <= null_api | {"registry", "events"}


class TestMetricsRecorder:
    def test_tick_lifecycle_builds_events(self):
        recorder = MetricsRecorder()
        recorder.begin_tick()
        recorder.on_window(1, 2)
        recorder.on_candidates(4)
        recorder.on_skyband_delta(3, 1, 2)
        recorder.phase("window", 0.25)
        recorder.phase("window", 0.25)
        recorder.on_pst_rebuild(16, 0.5, partial=True)
        recorder.end_tick(1.0, now_seq=7, skyband_size=10,
                          staircase_size=4, window_occupancy=20)
        (event,) = recorder.events
        assert isinstance(event, TickEvent)
        assert event.tick == 7
        assert event.arrivals == 1
        assert event.evictions == 2
        assert event.candidates == 4
        assert event.skyband_added == 3
        assert event.skyband_removed == 1
        assert event.skyband_expired == 2
        assert event.pst_rebuilds == 1
        assert event.skyband_size == 10
        assert event.phases["window"] == pytest.approx(0.5)
        assert event.phases["pst_rebuild"] == pytest.approx(0.5)
        registry = recorder.registry
        assert registry.value("repro_ticks_total") == 1
        assert registry.value("repro_objects_total") == 1
        assert registry.value("repro_evictions_total") == 2
        assert registry.value("repro_skyband_inserts_total") == 3
        assert registry.value("repro_pst_rebuilds_total") == 1
        assert registry.value("repro_skyband_size") == 10
        assert registry.get("repro_append_seconds").solo.count == 1

    def test_accumulators_reset_between_ticks(self):
        recorder = MetricsRecorder()
        recorder.begin_tick()
        recorder.on_candidates(5)
        recorder.end_tick(0.1)
        recorder.begin_tick()
        recorder.end_tick(0.1)
        assert recorder.events[1].candidates == 0
        assert recorder.registry.value("repro_candidate_pairs_total") == 5

    def test_trace_disabled(self):
        recorder = MetricsRecorder(trace=False)
        recorder.begin_tick()
        recorder.end_tick(0.1)
        assert recorder.events == []
        assert recorder.registry.value("repro_ticks_total") == 1

    def test_trace_capacity_ring_buffer(self):
        recorder = MetricsRecorder(trace_capacity=2)
        for i in range(5):
            recorder.begin_tick()
            recorder.end_tick(0.1, now_seq=i + 1)
        assert [e.tick for e in recorder.events] == [4, 5]
        assert recorder.registry.value("repro_ticks_total") == 5

    def test_shared_registry(self):
        registry = MetricsRegistry()
        a = MetricsRecorder(registry)
        b = MetricsRecorder(registry)
        a.on_pst_insert()
        b.on_pst_insert()
        assert registry.value("repro_pst_inserts_total") == 2

    def test_sweep_and_traversal_counters(self):
        recorder = MetricsRecorder()
        recorder.on_sweep(100, 40)
        recorder.on_sweep(50, 30)
        recorder.on_skiplist_traversal(7)
        assert recorder.registry.value("repro_sweeps_total") == 2
        assert recorder.registry.value("repro_sweep_pairs_total") == 150
        assert recorder.registry.value(
            "repro_skiplist_node_traversals_total") == 7

    def test_phase_histogram_labelled(self):
        recorder = MetricsRecorder()
        recorder.phase("generate", 0.001)
        recorder.phase("generate", 0.002)
        family = recorder.registry.get("repro_phase_seconds")
        assert family.labels("generate").count == 2


class TestTimers:
    def test_timer_observes_into_recorder(self):
        recorder = MetricsRecorder()
        with Timer(recorder, "repro_block_seconds") as timer:
            pass
        assert timer.elapsed >= 0.0
        assert recorder.registry.get("repro_block_seconds").solo.count == 1

    def test_timed_disabled_returns_shared_noop(self):
        timer_a = timed(NULL_RECORDER, "repro_block_seconds")
        timer_b = timed(NULL_RECORDER, "repro_block_seconds")
        assert timer_a is timer_b  # shared no-op, no allocation
        with timer_a:
            pass
        assert timer_a.elapsed == 0.0

    def test_timed_enabled_returns_live_timer(self):
        recorder = MetricsRecorder()
        with timed(recorder, "repro_block_seconds"):
            pass
        assert recorder.registry.get("repro_block_seconds").solo.count == 1
