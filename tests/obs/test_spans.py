"""Tests for the span tracing substrate (`repro.obs.spans`)."""

from __future__ import annotations

import pytest

from repro.obs.spans import (
    NULL_SPANS,
    NullSpanRecorder,
    SpanRecorder,
    new_span_id,
    new_trace_id,
)


class TestIds:
    def test_trace_id_shape(self):
        trace = new_trace_id()
        assert len(trace) == 16
        int(trace, 16)
        assert trace == trace.lower()

    def test_span_id_shape(self):
        span = new_span_id()
        assert len(span) == 8
        int(span, 16)

    def test_ids_are_fresh(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestSpanLifecycle:
    def test_context_manager_records_on_exit(self):
        spans = SpanRecorder()
        with spans.span("op:ingest", trace="t1", op="ingest") as span:
            assert span.seconds is None
        assert span.seconds is not None and span.seconds >= 0.0
        assert len(spans) == 1
        record = spans.recent()[0]
        assert record["name"] == "op:ingest"
        assert record["trace"] == "t1"
        assert record["attrs"] == {"op": "ingest"}

    def test_finish_is_idempotent(self):
        spans = SpanRecorder()
        span = spans.span("x")
        span.finish()
        first = span.seconds
        span.finish()
        assert span.seconds == first
        assert len(spans) == 1
        assert spans.finished_total == 1

    def test_explicit_finish_inside_with_is_safe(self):
        spans = SpanRecorder()
        with spans.span("x") as span:
            span.finish()
        assert len(spans) == 1

    def test_exception_stamps_error_attr_and_propagates(self):
        spans = SpanRecorder()
        with pytest.raises(ValueError):
            with spans.span("x"):
                raise ValueError("boom")
        record = spans.recent()[0]
        assert record["attrs"]["error"] == "ValueError"

    def test_exception_does_not_mutate_shared_attrs(self):
        # __exit__ copies attrs before adding "error", so a dict the
        # caller handed in (or the kwargs dict) is never mutated.
        spans = SpanRecorder()
        span = spans.span("x")
        original = span.attrs
        try:
            with span:
                raise RuntimeError
        except RuntimeError:
            pass
        assert "error" not in original

    def test_to_dict_shape(self):
        spans = SpanRecorder()
        span = spans.span("tick", trace="t", parent="p", rows=3)
        span.finish()
        record = span.to_dict()
        assert record["name"] == "tick"
        assert record["trace"] == "t"
        assert record["parent"] == "p"
        assert record["span"] == span.span_id
        assert record["seconds"] == span.seconds
        assert record["attrs"] == {"rows": 3}

    def test_unfinished_span_not_recorded(self):
        spans = SpanRecorder()
        spans.span("open")
        assert len(spans) == 0
        assert spans.finished_total == 0


class TestSpanRecorder:
    def test_ring_is_bounded_but_total_counts_on(self):
        spans = SpanRecorder(capacity=3)
        for index in range(5):
            spans.span(f"s{index}").finish()
        assert len(spans) == 3
        assert spans.finished_total == 5
        assert [r["name"] for r in spans.recent()] == ["s4", "s3", "s2"]

    def test_recent_limit(self):
        spans = SpanRecorder()
        for index in range(4):
            spans.span(f"s{index}").finish()
        assert [r["name"] for r in spans.recent(2)] == ["s3", "s2"]

    def test_for_trace_oldest_first(self):
        spans = SpanRecorder()
        spans.span("a", trace="t1").finish()
        spans.span("other", trace="t2").finish()
        spans.span("b", trace="t1").finish()
        assert [r["name"] for r in spans.for_trace("t1")] == ["a", "b"]
        assert spans.for_trace("missing") == []

    def test_sink_receives_each_finished_span(self):
        seen = []
        spans = SpanRecorder(sink=seen.append)
        spans.span("x", trace="t").finish()
        assert len(seen) == 1
        assert seen[0]["name"] == "x"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_empty_recorder_is_falsy_by_len_use_is_checks(self):
        # Recorders define __len__, so an *empty but real* recorder is
        # falsy — adoption logic must use `is not None`, never truthiness
        # (the bug this pins: `spans or NULL_SPANS` would silently
        # discard a fresh recorder).
        assert not SpanRecorder()
        assert (SpanRecorder() or NULL_SPANS) is NULL_SPANS


class TestNullRecorder:
    def test_disabled_flag_is_class_attribute(self):
        assert NullSpanRecorder.enabled is False
        assert NULL_SPANS.enabled is False

    def test_null_span_is_shared_and_inert(self):
        a = NULL_SPANS.span("x", trace="t")
        b = NULL_SPANS.span("y")
        assert a is b
        with a:
            pass
        assert a.finish() is a
        assert a.to_dict() == {}

    def test_null_queries_empty(self):
        assert len(NULL_SPANS) == 0
        assert NULL_SPANS.recent() == []
        assert NULL_SPANS.for_trace("t") == []
        assert NULL_SPANS.finished_total == 0

    def test_null_span_swallows_nothing(self):
        with pytest.raises(KeyError):
            with NULL_SPANS.span("x"):
                raise KeyError("propagates")
