"""Tests for monotonic combiners."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ScoringFunctionError
from repro.scoring.combiners import (
    MaxCombiner,
    MinCombiner,
    NegatedProductOfNegationsCombiner,
    ProductCombiner,
    SumCombiner,
    WeightedSumCombiner,
)


class TestValues:
    def test_sum(self):
        assert SumCombiner().combine([1.0, 2.0, 3.0]) == 6.0

    def test_weighted_sum(self):
        combiner = WeightedSumCombiner([2.0, 0.5])
        assert combiner.combine([1.0, 4.0]) == 4.0

    def test_weighted_sum_arity_checked(self):
        with pytest.raises(ScoringFunctionError):
            WeightedSumCombiner([1.0]).combine([1.0, 2.0])

    def test_weighted_sum_rejects_negative_weights(self):
        with pytest.raises(ScoringFunctionError):
            WeightedSumCombiner([1.0, -1.0])

    def test_product(self):
        assert ProductCombiner().combine([2.0, 3.0]) == 6.0

    def test_neg_product_of_negations(self):
        # s4 = -prod(|dx|): locals are -|dx| = [-2, -3] -> -(2*3) = -6
        combiner = NegatedProductOfNegationsCombiner()
        assert combiner.combine([-2.0, -3.0]) == -6.0

    def test_max_min(self):
        assert MaxCombiner().combine([1.0, 5.0, 3.0]) == 5.0
        assert MinCombiner().combine([1.0, 5.0, 3.0]) == 1.0


class TestDomainChecks:
    def test_product_rejects_negative_inputs(self):
        with pytest.raises(ScoringFunctionError):
            ProductCombiner().combine([1.0, -2.0])

    def test_neg_product_rejects_positive_inputs(self):
        with pytest.raises(ScoringFunctionError):
            NegatedProductOfNegationsCombiner().combine([1.0, -2.0])

    def test_product_accepts_zero(self):
        assert ProductCombiner().combine([0.0, 5.0]) == 0.0


nonneg = st.lists(st.floats(0, 100), min_size=1, max_size=5)
nonpos = st.lists(st.floats(-100, 0), min_size=1, max_size=5)
anyvals = st.lists(st.floats(-100, 100), min_size=1, max_size=5)


def assert_monotone(combiner, base, index, bump):
    """Raising one argument must not lower the combined score."""
    bumped = list(base)
    bumped[index] = bumped[index] + bump
    assert combiner.combine(bumped) >= combiner.combine(base) - 1e-9


@settings(max_examples=80, deadline=None)
@given(base=anyvals, bump=st.floats(0, 50), data=st.data())
def test_property_sum_monotone(base, bump, data):
    index = data.draw(st.integers(0, len(base) - 1))
    assert_monotone(SumCombiner(), base, index, bump)


@settings(max_examples=80, deadline=None)
@given(base=nonneg, bump=st.floats(0, 50), data=st.data())
def test_property_product_monotone_on_nonnegatives(base, bump, data):
    index = data.draw(st.integers(0, len(base) - 1))
    assert_monotone(ProductCombiner(), base, index, bump)


@settings(max_examples=80, deadline=None)
@given(base=nonpos, bump=st.floats(0, 50), data=st.data())
def test_property_neg_product_monotone_on_nonpositives(base, bump, data):
    """The s4 realization must be monotone non-decreasing in each local."""
    index = data.draw(st.integers(0, len(base) - 1))
    bump = min(bump, -base[index])  # stay within the non-positive domain
    assert_monotone(NegatedProductOfNegationsCombiner(), base, index, bump)


@settings(max_examples=80, deadline=None)
@given(base=anyvals, bump=st.floats(0, 50), data=st.data())
def test_property_max_min_monotone(base, bump, data):
    index = data.draw(st.integers(0, len(base) - 1))
    assert_monotone(MaxCombiner(), base, index, bump)
    assert_monotone(MinCombiner(), base, index, bump)
