"""Tests for GlobalScoringFunction composition."""

from __future__ import annotations

import pytest

from repro.exceptions import ScoringFunctionError
from repro.scoring.base import LambdaScoringFunction
from repro.scoring.combiners import SumCombiner
from repro.scoring.composite import GlobalScoringFunction
from repro.scoring.local import AbsoluteDifference, SumValues
from repro.stream.object import StreamObject


def obj(seq, *values):
    return StreamObject(seq, values)


class TestGlobalScoringFunction:
    def test_needs_terms(self):
        with pytest.raises(ScoringFunctionError):
            GlobalScoringFunction([], SumCombiner())

    def test_score_combines_locals(self):
        sf = GlobalScoringFunction(
            [(0, AbsoluteDifference()), (1, AbsoluteDifference())],
            SumCombiner(),
        )
        a, b = obj(1, 1.0, 10.0), obj(2, 4.0, 12.0)
        assert sf.score(a, b) == 3.0 + 2.0

    def test_local_scores_exposed(self):
        sf = GlobalScoringFunction(
            [(0, AbsoluteDifference()), (1, SumValues())], SumCombiner()
        )
        a, b = obj(1, 1.0, 2.0), obj(2, 5.0, 3.0)
        assert sf.local_scores(a, b) == [4.0, 5.0]

    def test_combine_matches_score(self):
        sf = GlobalScoringFunction([(0, AbsoluteDifference())], SumCombiner())
        a, b = obj(1, 1.0), obj(2, 9.0)
        assert sf.combine(sf.local_scores(a, b)) == sf.score(a, b)

    def test_same_attribute_twice(self):
        sf = GlobalScoringFunction(
            [(0, AbsoluteDifference()), (0, SumValues())], SumCombiner()
        )
        a, b = obj(1, 2.0), obj(2, 5.0)
        assert sf.score(a, b) == 3.0 + 7.0
        assert sf.attributes == (0,)

    def test_attributes_sorted_unique(self):
        sf = GlobalScoringFunction(
            [(2, AbsoluteDifference()), (0, AbsoluteDifference())],
            SumCombiner(),
        )
        assert sf.attributes == (0, 2)

    def test_is_global(self):
        sf = GlobalScoringFunction([(0, AbsoluteDifference())], SumCombiner())
        assert sf.is_global()

    def test_default_name_is_structural(self):
        sf = GlobalScoringFunction(
            [(0, AbsoluteDifference())], SumCombiner()
        )
        assert "abs-diff[0]" in sf.name

    def test_symmetry(self):
        sf = GlobalScoringFunction(
            [(0, AbsoluteDifference()), (1, SumValues())], SumCombiner()
        )
        a, b = obj(1, 1.0, 2.0), obj(2, 3.0, 4.0)
        assert sf.score(a, b) == sf.score(b, a)


class TestLambdaScoringFunction:
    def test_wraps_callable(self):
        sf = LambdaScoringFunction(
            lambda a, b: abs(a.values[0] * b.values[0]), name="xprod"
        )
        assert sf.score(obj(1, 2.0), obj(2, -3.0)) == 6.0
        assert sf.name == "xprod"
        assert not sf.is_global()

    def test_attributes_declaration(self):
        sf = LambdaScoringFunction(lambda a, b: 0.0, attributes=(0, 2))
        assert sf.attributes == (0, 2)
        assert LambdaScoringFunction(lambda a, b: 0.0).attributes is None
