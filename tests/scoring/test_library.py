"""Tests for the paper's scoring-function suite (s1..s4 and the sensor
function, §VI-A)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.library import (
    k_closest_pairs,
    k_furthest_pairs,
    paper_scoring_functions,
    sensor_scoring_function,
    top_k_dissimilar_pairs,
    top_k_similar_pairs,
)
from repro.stream.object import StreamObject


def obj(seq, *values):
    return StreamObject(seq, values)


vec = st.lists(st.floats(-50, 50), min_size=3, max_size=3)


class TestS1ToS4Definitions:
    """Each s_i must equal its closed-form definition from §VI-A."""

    @settings(max_examples=60, deadline=None)
    @given(x=vec, y=vec)
    def test_s1_is_manhattan(self, x, y):
        a, b = obj(1, *x), obj(2, *y)
        want = sum(abs(xi - yi) for xi, yi in zip(x, y))
        assert math.isclose(k_closest_pairs(3).score(a, b), want)

    @settings(max_examples=60, deadline=None)
    @given(x=vec, y=vec)
    def test_s2_is_negated_manhattan(self, x, y):
        a, b = obj(1, *x), obj(2, *y)
        want = -sum(abs(xi - yi) for xi, yi in zip(x, y))
        assert math.isclose(k_furthest_pairs(3).score(a, b), want)

    @settings(max_examples=60, deadline=None)
    @given(x=vec, y=vec)
    def test_s3_is_product_of_diffs(self, x, y):
        a, b = obj(1, *x), obj(2, *y)
        want = math.prod(abs(xi - yi) for xi, yi in zip(x, y))
        assert math.isclose(top_k_similar_pairs(3).score(a, b), want)

    @settings(max_examples=60, deadline=None)
    @given(x=vec, y=vec)
    def test_s4_is_negated_product(self, x, y):
        a, b = obj(1, *x), obj(2, *y)
        want = -math.prod(abs(xi - yi) for xi, yi in zip(x, y))
        assert math.isclose(top_k_dissimilar_pairs(3).score(a, b), want)


class TestSuite:
    def test_four_functions(self):
        suite = paper_scoring_functions(2)
        assert len(suite) == 4
        assert all(sf.is_global() for sf in suite)

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_arity_matches_d(self, d):
        for sf in paper_scoring_functions(d):
            assert sf.num_terms == d
            assert sf.attributes == tuple(range(d))


class TestSensorFunction:
    def test_formula(self):
        sf = sensor_scoring_function()
        a = obj(1, 100.0, 20.0, 50.0)
        b = obj(2, 130.0, 25.0, 40.0)
        # |dt| / (|dtemp| * |dhum|) = 30 / (5 * 10)
        assert math.isclose(sf.score(a, b), 30.0 / 50.0)

    def test_prefers_close_in_time_far_in_readings(self):
        sf = sensor_scoring_function()
        base = obj(1, 0.0, 20.0, 50.0)
        anomaly = obj(2, 10.0, 35.0, 80.0)    # near in time, far in readings
        mundane = obj(3, 500.0, 20.5, 50.5)   # far in time, near in readings
        assert sf.score(base, anomaly) < sf.score(base, mundane)

    def test_identical_readings_guarded_by_epsilon(self):
        sf = sensor_scoring_function()
        a = obj(1, 0.0, 20.0, 50.0)
        b = obj(2, 10.0, 20.0, 50.0)
        score = sf.score(a, b)
        assert math.isfinite(score)
        assert score > 0

    def test_not_global(self):
        assert not sensor_scoring_function().is_global()

    def test_custom_attribute_positions(self):
        sf = sensor_scoring_function(time_attr=2, temp_attr=0, humidity_attr=1)
        a = obj(1, 20.0, 50.0, 100.0)
        b = obj(2, 25.0, 40.0, 130.0)
        assert math.isclose(sf.score(a, b), 30.0 / 50.0)
