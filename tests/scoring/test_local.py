"""Tests for loose monotonic local scoring functions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ScoringFunctionError
from repro.scoring.local import (
    AbsoluteDifference,
    CustomLocal,
    MaxValue,
    MinValue,
    NegatedAbsoluteDifference,
    NegatedSumValues,
    SumValues,
    Trend,
)

ALL_LOCALS = [
    AbsoluteDifference(),
    NegatedAbsoluteDifference(),
    SumValues(),
    NegatedSumValues(),
    MinValue(),
    MaxValue(),
]

values = st.floats(-100, 100)


class TestValues:
    def test_abs_diff(self):
        assert AbsoluteDifference().score(3.0, 7.5) == 4.5

    def test_neg_abs_diff(self):
        assert NegatedAbsoluteDifference().score(3.0, 7.5) == -4.5

    def test_sum(self):
        assert SumValues().score(2.0, 3.0) == 5.0

    def test_neg_sum(self):
        assert NegatedSumValues().score(2.0, 3.0) == -5.0

    def test_min_max(self):
        assert MinValue().score(2.0, 9.0) == 2.0
        assert MaxValue().score(2.0, 9.0) == 9.0

    def test_callable_protocol(self):
        assert AbsoluteDifference()(1.0, 4.0) == 3.0


@pytest.mark.parametrize("local_fn", ALL_LOCALS, ids=lambda f: f.name)
class TestLooseMonotonicity:
    """Each function must obey its declared trends — the exact property
    the pair-retrieval iterators rely on (paper §V-B)."""

    @settings(max_examples=50, deadline=None)
    @given(x=values, deltas=st.lists(st.floats(0.01, 50), min_size=2, max_size=5))
    def test_trend_above(self, local_fn, x, deltas):
        points = sorted(deltas)
        scores = [local_fn.score(x, x + d) for d in points]
        if local_fn.trend_above is Trend.INCREASING_AWAY:
            assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))
        else:
            assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    @settings(max_examples=50, deadline=None)
    @given(x=values, deltas=st.lists(st.floats(0.01, 50), min_size=2, max_size=5))
    def test_trend_below(self, local_fn, x, deltas):
        points = sorted(deltas)
        scores = [local_fn.score(x, x - d) for d in points]
        if local_fn.trend_below is Trend.INCREASING_AWAY:
            assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))
        else:
            assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    @settings(max_examples=50, deadline=None)
    @given(x=values, y=values)
    def test_symmetry(self, local_fn, x, y):
        assert local_fn.score(x, y) == local_fn.score(y, x)


class TestCustomLocal:
    def test_valid_declaration_accepted(self):
        fn = CustomLocal(
            lambda x, y: (x - y) ** 2,
            Trend.INCREASING_AWAY,
            Trend.INCREASING_AWAY,
            name="squared-diff",
        )
        assert fn.score(1.0, 3.0) == 4.0
        assert fn.trend_above is Trend.INCREASING_AWAY

    def test_wrong_declaration_rejected(self):
        with pytest.raises(ScoringFunctionError):
            CustomLocal(
                lambda x, y: abs(x - y),
                Trend.DECREASING_AWAY,  # wrong: |x-y| increases away
                Trend.INCREASING_AWAY,
            )

    def test_validation_can_be_disabled(self):
        fn = CustomLocal(
            lambda x, y: abs(x - y),
            Trend.DECREASING_AWAY,
            Trend.INCREASING_AWAY,
            validate=False,
        )
        assert fn.score(0.0, 2.0) == 2.0
