"""Checkpoint/restore: format validation, atomicity, and the
byte-identity acceptance regression — a checkpoint taken mid-stream and
restored into a fresh server answers every registered query
byte-identically."""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.exceptions import CheckpointError
from repro.serve.checkpoint import (
    FORMAT_NAME,
    FORMAT_VERSION,
    checkpoint_state,
    load_checkpoint,
    restore_server_monitor,
    save_checkpoint,
)
from repro.serve.protocol import pair_to_wire
from repro.serve.session import ServerMonitor


def rows(n, seed=0):
    rng = random.Random(seed)
    return [[rng.random(), rng.random()] for _ in range(n)]


def populated_session(window=32, n_rows=80):
    session = ServerMonitor(window, 2)
    session.register("closest", 3)
    session.register("furthest", 2)
    session.register("dissimilar", 4)
    session.ingest(rows(n_rows))
    session.drain_deltas()
    return session


class TestByteIdenticalRestore:
    def test_mid_stream_checkpoint_restores_byte_identically(self, tmp_path):
        """The acceptance criterion: every registered query's snapshot
        answer serializes byte-identically after restore."""
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        assert [r.spec() for r in restored.queries()] == \
            [r.spec() for r in session.queries()]
        for record in session.queries():
            original = json.dumps(
                [pair_to_wire(p) for p in session.results(record.handle_id)]
            )
            recovered = json.dumps(
                [pair_to_wire(p)
                 for p in restored.results(record.handle_id)]
            )
            assert original == recovered

    def test_restored_session_continues_identically(self, tmp_path):
        """Feeding the same suffix to both sessions keeps them equal —
        restore is a true mid-stream fork, not just a snapshot."""
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        suffix = rows(40, seed=9)
        session.ingest(suffix)
        restored.ingest(suffix)
        for record in session.queries():
            assert json.dumps(
                [pair_to_wire(p) for p in session.results(record.handle_id)]
            ) == json.dumps(
                [pair_to_wire(p)
                 for p in restored.results(record.handle_id)]
            )

    def test_sequence_numbers_preserved(self, tmp_path):
        session = populated_session(window=16, n_rows=50)
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        assert restored.monitor.manager.now_seq == \
            session.monitor.manager.now_seq
        assert [obj.seq for obj in restored.monitor.manager] == \
            [obj.seq for obj in session.monitor.manager]

    def test_handles_with_gaps_restore_under_saved_names(self, tmp_path):
        session = ServerMonitor(32, 2)
        session.register("closest", 3)   # q1
        q2 = session.register("furthest", 2)
        session.register("closest", 5)   # q3
        session.unregister(q2)           # leave a gap
        session.ingest(rows(40))
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        assert [r.handle_id for r in restored.queries()] == ["q1", "q3"]
        # deltas after restore carry the restored (saved) handle names
        restored.drain_deltas()
        restored.ingest(rows(10, seed=4))
        assert {event.query for event in restored.drain_deltas()} \
            <= {"q1", "q3"}
        # and new registrations never collide with restored names
        assert restored.register("closest", 2) == "q4"

    def test_empty_window_checkpoint(self, tmp_path):
        session = ServerMonitor(32, 2)
        session.register("closest", 3)
        path = str(tmp_path / "ck.json")
        meta = save_checkpoint(session, path)
        assert meta["objects"] == 0
        restored = restore_server_monitor(path)
        restored.ingest(rows(5))
        assert [obj.seq for obj in restored.monitor.manager] == \
            [1, 2, 3, 4, 5]


class TestFormat:
    def test_document_shape(self, tmp_path):
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        state = json.loads(open(path).read())
        assert state["format"] == FORMAT_NAME
        assert state["version"] == FORMAT_VERSION
        assert len(state["window"]) == len(list(session.monitor.manager))
        assert len(state["queries"]) == 3

    def test_no_tmp_file_left_behind(self, tmp_path):
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{broken")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": "other-thing", "version": 1}))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert FORMAT_NAME in str(err.value)

    def test_newer_version_rejected(self, tmp_path):
        session = populated_session()
        state = checkpoint_state(session)
        state["version"] = FORMAT_VERSION + 1
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert "version" in str(err.value)

    def test_missing_section_rejected(self, tmp_path):
        session = populated_session()
        state = checkpoint_state(session)
        del state["window"]
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert "window" in str(err.value)

    def test_unknown_scoring_rejected(self, tmp_path):
        session = populated_session()
        state = checkpoint_state(session)
        state["queries"][0]["scoring"] = "sideways"
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_additive_extra_keys_ignored(self, tmp_path):
        """The compatibility rule: unknown extra keys never break a
        reader, so additive format changes need no version bump."""
        session = populated_session()
        state = checkpoint_state(session)
        state["future_extension"] = {"anything": True}
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        restored = restore_server_monitor(str(path))
        assert len(restored.queries()) == 3

    def test_unserializable_payload_fails_loudly(self, tmp_path):
        session = ServerMonitor(8, 2)
        session.monitor.append([0.1, 0.2], payload=object())
        path = str(tmp_path / "ck.json")
        with pytest.raises(CheckpointError):
            save_checkpoint(session, path)
        assert not os.path.exists(path)  # nothing (lossy) was written

    def test_payloads_and_timestamps_survive(self, tmp_path):
        session = ServerMonitor(8, 2, time_horizon=1000.0)
        session.monitor.append([0.1, 0.2], timestamp=1.5,
                               payload={"tag": "a"})
        session.monitor.append([0.3, 0.4], timestamp=2.5,
                               payload={"tag": "b"})
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        objects = list(restored.monitor.manager)
        assert [obj.payload for obj in objects] == [{"tag": "a"},
                                                    {"tag": "b"}]
        assert [obj.timestamp for obj in objects] == [1.5, 2.5]
