"""Checkpoint/restore: format validation, atomicity, durability, the
v2 structural restore, and the byte-identity acceptance regression — a
checkpoint taken mid-stream and restored into a fresh server answers
every registered query byte-identically."""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.exceptions import CheckpointError
from repro.serve.checkpoint import (
    FORMAT_NAME,
    FORMAT_VERSION,
    checkpoint_state,
    load_checkpoint,
    restore_server_monitor,
    save_checkpoint,
    write_checkpoint_document,
)
from repro.serve.protocol import pair_to_wire
from repro.serve.session import ServerMonitor


def rows(n, seed=0):
    rng = random.Random(seed)
    return [[rng.random(), rng.random()] for _ in range(n)]


def populated_session(window=32, n_rows=80):
    session = ServerMonitor(window, 2)
    session.register("closest", 3)
    session.register("furthest", 2)
    session.register("dissimilar", 4)
    session.ingest(rows(n_rows))
    session.drain_deltas()
    return session


class TestByteIdenticalRestore:
    def test_mid_stream_checkpoint_restores_byte_identically(self, tmp_path):
        """The acceptance criterion: every registered query's snapshot
        answer serializes byte-identically after restore."""
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        assert [r.spec() for r in restored.queries()] == \
            [r.spec() for r in session.queries()]
        for record in session.queries():
            original = json.dumps(
                [pair_to_wire(p) for p in session.results(record.handle_id)]
            )
            recovered = json.dumps(
                [pair_to_wire(p)
                 for p in restored.results(record.handle_id)]
            )
            assert original == recovered

    def test_restored_session_continues_identically(self, tmp_path):
        """Feeding the same suffix to both sessions keeps them equal —
        restore is a true mid-stream fork, not just a snapshot."""
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        suffix = rows(40, seed=9)
        session.ingest(suffix)
        restored.ingest(suffix)
        for record in session.queries():
            assert json.dumps(
                [pair_to_wire(p) for p in session.results(record.handle_id)]
            ) == json.dumps(
                [pair_to_wire(p)
                 for p in restored.results(record.handle_id)]
            )

    def test_sequence_numbers_preserved(self, tmp_path):
        session = populated_session(window=16, n_rows=50)
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        assert restored.monitor.manager.now_seq == \
            session.monitor.manager.now_seq
        assert [obj.seq for obj in restored.monitor.manager] == \
            [obj.seq for obj in session.monitor.manager]

    def test_handles_with_gaps_restore_under_saved_names(self, tmp_path):
        session = ServerMonitor(32, 2)
        session.register("closest", 3)   # q1
        q2 = session.register("furthest", 2)
        session.register("closest", 5)   # q3
        session.unregister(q2)           # leave a gap
        session.ingest(rows(40))
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        assert [r.handle_id for r in restored.queries()] == ["q1", "q3"]
        # deltas after restore carry the restored (saved) handle names
        restored.drain_deltas()
        restored.ingest(rows(10, seed=4))
        assert {event.query for event in restored.drain_deltas()} \
            <= {"q1", "q3"}
        # and new registrations never collide with restored names
        assert restored.register("closest", 2) == "q4"

    def test_empty_window_checkpoint(self, tmp_path):
        session = ServerMonitor(32, 2)
        session.register("closest", 3)
        path = str(tmp_path / "ck.json")
        meta = save_checkpoint(session, path)
        assert meta["objects"] == 0
        restored = restore_server_monitor(path)
        restored.ingest(rows(5))
        assert [obj.seq for obj in restored.monitor.manager] == \
            [1, 2, 3, 4, 5]


class TestFormat:
    def test_document_shape(self, tmp_path):
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        state = json.loads(open(path).read())
        assert state["format"] == FORMAT_NAME
        assert state["version"] == FORMAT_VERSION
        assert len(state["window"]) == len(list(session.monitor.manager))
        assert len(state["queries"]) == 3

    def test_no_tmp_file_left_behind(self, tmp_path):
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{broken")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": "other-thing", "version": 1}))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert FORMAT_NAME in str(err.value)

    def test_newer_version_rejected(self, tmp_path):
        session = populated_session()
        state = checkpoint_state(session)
        state["version"] = FORMAT_VERSION + 1
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert "version" in str(err.value)

    def test_missing_section_rejected(self, tmp_path):
        session = populated_session()
        state = checkpoint_state(session)
        del state["window"]
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(str(path))
        assert "window" in str(err.value)

    def test_unknown_scoring_rejected(self, tmp_path):
        session = populated_session()
        state = checkpoint_state(session)
        state["queries"][0]["scoring"] = "sideways"
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_additive_extra_keys_ignored(self, tmp_path):
        """The compatibility rule: unknown extra keys never break a
        reader, so additive format changes need no version bump."""
        session = populated_session()
        state = checkpoint_state(session)
        state["future_extension"] = {"anything": True}
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        restored = restore_server_monitor(str(path))
        assert len(restored.queries()) == 3

    def test_unserializable_payload_fails_loudly(self, tmp_path):
        session = ServerMonitor(8, 2)
        session.monitor.append([0.1, 0.2], payload=object())
        path = str(tmp_path / "ck.json")
        with pytest.raises(CheckpointError):
            save_checkpoint(session, path)
        assert not os.path.exists(path)  # nothing (lossy) was written

    def test_payloads_and_timestamps_survive(self, tmp_path):
        session = ServerMonitor(8, 2, time_horizon=1000.0)
        session.monitor.append([0.1, 0.2], timestamp=1.5,
                               payload={"tag": "a"})
        session.monitor.append([0.3, 0.4], timestamp=2.5,
                               payload={"tag": "b"})
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        restored = restore_server_monitor(path)
        objects = list(restored.monitor.manager)
        assert [obj.payload for obj in objects] == [{"tag": "a"},
                                                    {"tag": "b"}]
        assert [obj.timestamp for obj in objects] == [1.5, 2.5]


class TestDurability:
    def test_tmp_file_unlinked_on_failed_replace(self, tmp_path):
        """A failed write must not leave its temp file behind."""
        target = tmp_path / "ck.json"
        target.mkdir()  # os.replace(file -> directory) fails
        with pytest.raises(OSError):
            write_checkpoint_document("{}", str(target))
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_tmp_name_carries_pid(self, tmp_path, monkeypatch):
        """Two writers pointed at one path must not share a temp name."""
        seen = {}
        original = os.replace

        def spy(src, dst):
            seen["src"] = src
            return original(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        session = populated_session()
        save_checkpoint(session, str(tmp_path / "ck.json"))
        assert seen["src"].endswith(f".tmp.{os.getpid()}")

    def test_fencing_refuses_lower_epoch_overwrite(self, tmp_path):
        """A demoted primary must not clobber its successor's
        checkpoint: the on-disk epoch wins."""
        path = str(tmp_path / "ck.json")
        promoted = populated_session()
        promoted.epoch = 3
        save_checkpoint(promoted, path)
        demoted = populated_session(n_rows=20)
        demoted.epoch = 1
        with pytest.raises(CheckpointError) as err:
            save_checkpoint(demoted, path)
        assert "epoch" in str(err.value)
        assert load_checkpoint(path)["epoch"] == 3  # untouched

    def test_fencing_allows_same_and_higher_epoch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        session = populated_session()
        session.epoch = 2
        save_checkpoint(session, path)
        save_checkpoint(session, path)  # same epoch: fine
        session.epoch = 5
        save_checkpoint(session, path)  # higher epoch: fine
        assert load_checkpoint(path)["epoch"] == 5

    def test_unfenced_write_ignores_on_disk_epoch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        session = populated_session()
        session.epoch = 9
        save_checkpoint(session, path)
        document = json.dumps(checkpoint_state(populated_session()))
        write_checkpoint_document(document, path)  # no fence_epoch
        assert load_checkpoint(path)["epoch"] == 0


class TestValidationHardening:
    """Malformed documents fail with CheckpointError naming the broken
    section — never a raw TypeError/KeyError escaping mid-restore."""

    def _state(self, **overrides):
        state = checkpoint_state(populated_session())
        state = json.loads(json.dumps(state))  # normalize tuples
        state.update(overrides)
        return state

    def _restore_path(self, tmp_path, state):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        return restore_server_monitor(str(path))

    @pytest.mark.parametrize("window", [
        42,                           # not a list at all
        [[1, [0.1, 0.2], None]],      # wrong arity
        [["x", [0.1, 0.2], None, None]],    # non-int seq
        [[0, [0.1, 0.2], None, None]],      # seq < 1
        [[1, "values", None, None]],        # values not a list
        [[1, [0.1, "y"], None, None]],      # non-numeric value
        [[1, [0.1, 0.2], "late", None]],    # non-numeric timestamp
    ])
    def test_malformed_window_rows(self, tmp_path, window):
        state = self._state(window=window, next_seq=2)
        with pytest.raises(CheckpointError):
            self._restore_path(tmp_path, state)

    def test_contiguity_error_names_expected_then_found(self, tmp_path):
        rows_ = [[5, [0.1, 0.2], None, None], [7, [0.3, 0.4], None, None]]
        state = self._state(window=rows_, next_seq=8)
        with pytest.raises(CheckpointError) as err:
            self._restore_path(tmp_path, state)
        assert "expected 6, found 7" in str(err.value)

    def test_empty_window_validates_next_seq(self, tmp_path):
        state = self._state(window=[], next_seq="soon", maintainers=[])
        with pytest.raises(CheckpointError) as err:
            self._restore_path(tmp_path, state)
        assert "next_seq" in str(err.value)

    def test_empty_window_next_seq_restores(self, tmp_path):
        state = self._state(window=[], next_seq=42, maintainers=[])
        restored = self._restore_path(tmp_path, state)
        assert restored.monitor.manager.now_seq == 41

    def test_window_end_must_match_next_seq(self, tmp_path):
        state = self._state(next_seq=999)
        with pytest.raises(CheckpointError) as err:
            self._restore_path(tmp_path, state)
        assert "next_seq" in str(err.value)

    @pytest.mark.parametrize("queries", [
        {"handle": "q1"},                       # wrong top-level type
        ["q1"],                                 # spec not an object
        [{"scoring": "closest", "k": 3, "n": 8}],   # missing handle
        [{"handle": "q1", "scoring": "closest", "k": True, "n": 8}],
        [{"handle": "q1", "scoring": "closest", "k": 0, "n": 8}],
        [{"handle": "q1", "scoring": "closest", "k": 3, "n": 1}],
    ])
    def test_malformed_query_specs(self, tmp_path, queries):
        state = self._state(queries=queries)
        with pytest.raises(CheckpointError):
            self._restore_path(tmp_path, state)

    @pytest.mark.parametrize("mutate", [
        lambda m: m.update(scoring="sideways"),
        lambda m: m.update(K=0),
        lambda m: m.update(skyband="pairs"),
        lambda m: m.update(skyband=[[1, 2]]),
        lambda m: m.update(skyband=[[2, 1, 0.5]]),   # older >= newer
        lambda m: m.update(skyband=[[1, 2, "far"]]),
        lambda m: m.update(staircase=[["broken"]]),
    ])
    def test_malformed_maintainers(self, tmp_path, mutate):
        state = self._state()
        mutate(state["maintainers"][0])
        with pytest.raises(CheckpointError):
            self._restore_path(tmp_path, state)

    def test_wrong_top_level_types(self, tmp_path):
        for key, value in [("monitor", []), ("epoch", -1),
                           ("next_handle", 0), ("maintainers", "no")]:
            state = self._state(**{key: value})
            with pytest.raises(CheckpointError):
                self._restore_path(tmp_path, state)


class TestStructuralRestore:
    def _answers(self, session):
        return {
            record.handle_id: json.dumps(
                [pair_to_wire(p)
                 for p in session.results(record.handle_id)]
            )
            for record in session.queries()
        }

    def test_structural_matches_replay_and_original(self, tmp_path):
        session = populated_session(window=24, n_rows=70)
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        replayed = restore_server_monitor(path, mode="replay")
        structural = restore_server_monitor(path, mode="structural",
                                            audit=True)
        want = self._answers(session)
        assert self._answers(replayed) == want
        assert self._answers(structural) == want

    def test_structural_continues_identically(self, tmp_path):
        session = populated_session(window=24, n_rows=70)
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        structural = restore_server_monitor(path, mode="structural")
        suffix = rows(30, seed=77)
        session.ingest(suffix)
        structural.ingest(suffix)
        assert self._answers(structural) == self._answers(session)

    def test_epoch_round_trips(self, tmp_path):
        session = populated_session()
        session.epoch = 7
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        assert restore_server_monitor(path).epoch == 7

    def test_unknown_mode_rejected(self, tmp_path):
        session = populated_session()
        path = str(tmp_path / "ck.json")
        save_checkpoint(session, path)
        with pytest.raises(CheckpointError):
            restore_server_monitor(path, mode="sideways")

    def test_v1_document_restores_via_replay(self, tmp_path):
        """The compat rule: v2 readers restore v1 files (no maintainer
        state, no epoch) by replaying the window."""
        session = populated_session()
        state = checkpoint_state(session)
        del state["maintainers"]
        del state["epoch"]
        state["version"] = 1
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        restored = restore_server_monitor(str(path))  # mode=structural
        assert restored.epoch == 0
        assert self._answers(restored) == self._answers(session)

    def test_dropped_skyband_pair_detected(self, tmp_path):
        """Deleting one skyband pair keeps the section well-formed but
        makes it disagree with the staircase — restore must refuse."""
        state = checkpoint_state(populated_session())
        entry = next(m for m in state["maintainers"]
                     if len(m["skyband"]) > 2)
        del entry["skyband"][1]
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError):
            restore_server_monitor(str(path))

    def test_corrupted_staircase_detected(self, tmp_path):
        state = checkpoint_state(populated_session())
        entry = next(m for m in state["maintainers"] if m["staircase"])
        entry["staircase"][0][1] -= 1  # nudge one age_key
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            restore_server_monitor(str(path))
        assert "staircase" in str(err.value)

    def test_out_of_order_skyband_detected(self, tmp_path):
        state = checkpoint_state(populated_session())
        entry = next(m for m in state["maintainers"]
                     if len(m["skyband"]) > 2)
        entry["skyband"].reverse()
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            restore_server_monitor(str(path))
        assert "order" in str(err.value)

    def test_pair_outside_window_detected(self, tmp_path):
        state = checkpoint_state(populated_session())
        entry = next(m for m in state["maintainers"] if m["skyband"])
        entry["skyband"][0][0] = 100000
        entry["skyband"][0][1] = 100001
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError) as err:
            restore_server_monitor(str(path))
        assert "outside" in str(err.value)
