"""Property-based round trip: ``restore(checkpoint(s))`` is ``s``.

Hypothesis drives random sessions — window size, scoring mix, k depths,
row counts (including zero), duplicate values, payloads — and asserts
that a checkpoint state restored *structurally* and by *replay* both
answer every registered query byte-identically to the original session,
and keep doing so after ingesting a shared suffix.  Structural restores
run under ``audit=True`` so every example is also cross-checked against
the brute-force skyband oracle.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.serve.checkpoint import checkpoint_state, restore_server_monitor
from repro.serve.protocol import pair_to_wire
from repro.serve.session import SCORING_NAMES, ServerMonitor

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

SCORINGS = sorted(SCORING_NAMES)

specs = st.lists(
    st.tuples(st.sampled_from(SCORINGS), st.integers(1, 5)),
    min_size=1, max_size=4,
)


def answers(session) -> dict:
    return {
        record.handle_id: json.dumps(
            [pair_to_wire(p) for p in session.results(record.handle_id)]
        )
        for record in session.queries()
    }


@given(
    window=st.integers(4, 24),
    n_rows=st.integers(0, 60),
    query_specs=specs,
    seed=st.integers(0, 2**16),
    with_payloads=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_roundtrip_property(window, n_rows, query_specs, seed,
                            with_payloads):
    rng = random.Random(seed)
    # Coarse values on purpose: duplicates exercise the tie-break keys.
    rows = [[rng.randrange(0, 8) / 4.0, rng.randrange(0, 8) / 4.0]
            for _ in range(n_rows)]
    session = ServerMonitor(window, 2, seed=seed % 7)
    for scoring, k in query_specs:
        session.register(scoring, k)
    if with_payloads:
        for index, row in enumerate(rows):
            session.monitor.append(row, payload={"i": index})
    else:
        session.ingest(rows)
    session.drain_deltas()

    # Through JSON and back — exactly what save/load would do on disk.
    state = json.loads(json.dumps(checkpoint_state(session)))
    structural = restore_server_monitor(state, mode="structural",
                                        audit=True)
    replayed = restore_server_monitor(state, mode="replay")

    want = answers(session)
    assert answers(structural) == want
    assert answers(replayed) == want
    assert structural.epoch == session.epoch
    assert structural.monitor.manager.now_seq == \
        session.monitor.manager.now_seq

    # A restore is a live fork, not a frozen snapshot: the same suffix
    # keeps all three sessions byte-identical.
    suffix = [[rng.randrange(0, 8) / 4.0, rng.randrange(0, 8) / 4.0]
              for _ in range(10)]
    session.ingest(suffix)
    structural.ingest(suffix)
    replayed.ingest(suffix)
    want = answers(session)
    assert answers(structural) == want
    assert answers(replayed) == want
