"""The ``repro serve`` / ``repro client`` CLI pair, driven end-to-end
as real subprocesses (announce line, signal drain, checkpoint flags)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn_server(*extra_args):
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--columns", "2",
         "--window", "64", "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "listening on" in line, line
    port = int(line.rsplit(":", 1)[1])
    return process, port


def run_client(port, *args, stdin_text=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", "client", *args,
         "--port", str(port)],
        input=stdin_text, capture_output=True, text=True, timeout=60,
        env=env,
    )


class TestServeSubprocess:
    def test_full_round_trip(self, tmp_path):
        ckpt = tmp_path / "cli.ckpt.json"
        process, port = spawn_server()
        try:
            result = run_client(
                port, "ingest", "--columns", "2",
                stdin_text="0.1,0.9\n0.2,0.8\n0.15,0.85\n",
            )
            assert result.returncode == 0, result.stdout + result.stderr
            assert "ingested 3 rows" in result.stdout

            result = run_client(port, "snapshot", "--scoring", "closest",
                                "--k", "2")
            assert result.returncode == 0
            assert "tick 3" in result.stdout and "#1:" in result.stdout

            result = run_client(port, "checkpoint", "--path", str(ckpt))
            assert result.returncode == 0
            assert "3 objects" in result.stdout

            result = run_client(port, "shutdown")
            assert result.returncode == 0
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
        assert ckpt.exists()

    def test_restore_serves_saved_answers(self, tmp_path):
        ckpt = tmp_path / "warm.ckpt.json"
        process, port = spawn_server()
        try:
            run_client(port, "ingest", "--columns", "2",
                       stdin_text="0.1,0.9\n0.2,0.8\n0.15,0.85\n")
            original = run_client(port, "snapshot", "--k", "2").stdout
            run_client(port, "checkpoint", "--path", str(ckpt))
            run_client(port, "shutdown")
            process.wait(timeout=30)

            process, port = spawn_server("--restore", str(ckpt))
            restored = run_client(port, "snapshot", "--k", "2").stdout
            assert restored == original
            run_client(port, "shutdown")
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()

    def test_sigint_drains_and_checkpoints_on_exit(self, tmp_path):
        ckpt = tmp_path / "exit.ckpt.json"
        process, port = spawn_server("--checkpoint-on-exit", str(ckpt))
        try:
            run_client(port, "ingest", "--columns", "2",
                       stdin_text="0.5,0.5\n0.6,0.6\n")
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
        out = process.stdout.read()
        assert "checkpoint" in out
        assert ckpt.exists()

    def test_standby_failover_via_cli(self, tmp_path):
        """The CLI failover drill: spawn a primary, attach a standby
        with ``--standby``, kill the primary, ``repro client promote``
        the standby, and keep serving through it."""
        primary, primary_port = spawn_server()
        standby = None
        try:
            run_client(primary_port, "ingest", "--columns", "2",
                       stdin_text="0.1,0.9\n0.2,0.8\n0.15,0.85\n")
            env = dict(os.environ, PYTHONPATH=SRC)
            standby = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--columns", "2",
                 "--window", "64", "--port", "0",
                 "--standby", f"127.0.0.1:{primary_port}"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env,
            )
            line = standby.stdout.readline()
            assert "listening on" in line, line
            standby_port = int(line.rsplit(":", 1)[1])
            announce = standby.stdout.readline()
            assert "standby of" in announce, announce

            answer = run_client(primary_port, "snapshot", "--k", "2")
            mirrored = run_client(standby_port, "snapshot", "--k", "2")
            assert mirrored.stdout == answer.stdout

            primary.kill()
            primary.wait(timeout=30)

            promoted = run_client(standby_port, "promote")
            assert promoted.returncode == 0, promoted.stdout
            assert "promoted to primary at epoch 1" in promoted.stdout

            result = run_client(standby_port, "ingest", "--columns", "2",
                                stdin_text="0.3,0.7\n")
            assert "ingested 1 rows" in result.stdout
            epoch = run_client(standby_port, "epoch")
            assert '"epoch": 1' in epoch.stdout
            run_client(standby_port, "shutdown")
            assert standby.wait(timeout=30) == 0
        finally:
            for process in (primary, standby):
                if process is not None and process.poll() is None:
                    process.kill()

    def test_standby_and_restore_flags_conflict(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--columns", "2",
             "--standby", "127.0.0.1:1", "--restore", "nope.json"],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert result.returncode != 0
        assert "--standby" in result.stderr

    def test_port_already_in_use_fails_fast(self):
        process, port = spawn_server()
        try:
            env = dict(os.environ, PYTHONPATH=SRC)
            clash = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "--columns", "2",
                 "--port", str(port)],
                capture_output=True, text=True, timeout=60, env=env,
            )
            assert clash.returncode != 0
        finally:
            run_client(port, "shutdown")
            process.wait(timeout=30)
