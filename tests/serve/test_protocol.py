"""Unit tests for the NDJSON frame protocol (repro.serve.protocol)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ProtocolError
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    pair_to_wire,
)


class TestFraming:
    def test_encode_is_one_compact_line(self):
        data = encode_frame({"op": "stats", "id": 7})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert b" " not in data  # compact separators

    def test_round_trip(self):
        frame = {"op": "ingest", "id": 3, "rows": [[0.5, 1.5]]}
        assert decode_frame(encode_frame(frame)) == frame

    def test_non_json_raises_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"{nope\n")
        assert err.value.code == "bad_json"

    def test_non_object_raises_bad_frame(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"[1,2,3]\n")
        assert err.value.code == "bad_frame"

    def test_error_codes_catalogued(self):
        for code in ("bad_json", "bad_frame", "unknown_op", "bad_request",
                     "unknown_query", "frame_too_large", "shutting_down"):
            assert code in ERROR_CODES

    def test_ops_catalogued(self):
        for op in ("ingest", "register", "unregister", "snapshot",
                   "subscribe", "unsubscribe", "checkpoint", "stats",
                   "shutdown"):
            assert op in OPS


class TestFrames:
    def test_ok_frame_shape(self):
        frame = ok_frame("ingest", 5, ingested=3)
        assert frame == {"ok": True, "op": "ingest", "id": 5, "ingested": 3}

    def test_ok_frame_without_id(self):
        assert "id" not in ok_frame("stats", None)

    def test_error_frame_shape(self):
        frame = error_frame("unknown_op", "no such op", request_id=9,
                            op="zap")
        assert frame["ok"] is False
        assert frame["id"] == 9
        assert frame["error"]["code"] == "unknown_op"
        assert "no such op" in frame["error"]["message"]

    def test_error_frame_rejects_uncatalogued_code(self):
        with pytest.raises(ValueError):
            error_frame("made_up_code", "boom", request_id=None, op=None)


class TestPairToWire:
    def test_wire_shape_is_json_serializable(self):
        from repro.core.monitor import TopKPairsMonitor
        from repro.scoring.library import k_closest_pairs

        monitor = TopKPairsMonitor(10, 2)
        handle = monitor.register_query(k_closest_pairs(2), k=1,
                                        continuous=True)
        monitor.extend([[0.1, 0.2], [0.15, 0.25]])
        pair = monitor.results(handle)[0]
        wire = pair_to_wire(pair)
        assert wire["older"] == 1 and wire["newer"] == 2
        assert wire["older_values"] == [0.1, 0.2]
        assert wire["newer_values"] == [0.15, 0.25]
        json.dumps(wire)  # must be wire-safe
