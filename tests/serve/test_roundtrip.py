"""Client↔server round trips over a real loopback socket.

Pins the two serving-layer acceptance properties end-to-end:

* subscribe deltas replayed client-side equal polling ``results()``
  (here: the ``snapshot`` op) at every tick;
* a checkpoint taken over the wire mid-stream, restored into a fresh
  server, answers byte-identically — and the whole engine runs under
  ``audit=True`` in the property test, so every tick is also checked
  against the runtime invariant verifier.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import TopKPairsMonitor
from repro.serve.client import ServeClient, apply_delta
from repro.serve.server import BackgroundServer
from repro.serve.session import SCORING_NAMES, ServerMonitor


def rows(n, seed=0):
    rng = random.Random(seed)
    return [[rng.random(), rng.random()] for _ in range(n)]


@pytest.fixture()
def server():
    with BackgroundServer(ServerMonitor(48, 2)) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


class TestBasicOps:
    def test_hello_announces_protocol(self, client):
        assert client.hello["event"] == "hello"
        assert client.hello["protocol"] == 1
        assert client.hello["backpressure"] == "block"

    def test_ingest_acks_exact_count(self, client):
        ack = client.ingest(rows(7))
        assert ack["ingested"] == 7 and ack["now_seq"] == 7
        ack = client.ingest(rows(5, seed=1))
        assert ack["ingested"] == 5 and ack["now_seq"] == 12

    def test_ingest_with_timestamps(self, client):
        ack = client.ingest([[0.1, 0.2], [0.3, 0.4]],
                            timestamps=[1.0, 2.0])
        assert ack["ingested"] == 2

    def test_snapshot_matches_registered_results(self, client):
        client.ingest(rows(30))
        query = client.register("closest", k=4)
        adhoc = client.snapshot("closest", 4)
        registered = client.snapshot(query=query)
        assert json.dumps(adhoc) == json.dumps(registered)

    def test_stats_include_serve_section(self, client):
        stats = client.stats()
        assert stats["serve"]["protocol"] == 1
        assert stats["serve"]["connections"] == 1

    def test_two_clients_share_the_stream(self, server):
        with ServeClient(port=server.port) as a, \
                ServeClient(port=server.port) as b:
            a.ingest(rows(5))
            ack = b.ingest(rows(5, seed=1))
            assert ack["now_seq"] == 10


class TestDeltaReplay:
    def test_deltas_replay_to_polled_answer_every_tick(self, client):
        """Acceptance: baseline + deltas == snapshot at every tick."""
        query = client.register("closest", k=3)
        answer = client.subscribe(query)
        for row in rows(120, seed=7):
            ack = client.ingest([row])
            for _ in range(ack["deltas"]):
                event = client.next_event(timeout=5.0)
                assert event["event"] == "delta"
                assert event["tick"] == ack["now_seq"]
                apply_delta(answer, event)
            polled = {
                (p["older"], p["newer"]): p
                for p in client.snapshot(query=query)
            }
            assert answer == polled

    def test_batched_ingest_deltas_also_replay(self, client):
        query = client.register("furthest", k=3)
        answer = client.subscribe(query)
        for start in range(0, 90, 9):
            ack = client.ingest(rows(9, seed=start))
            for _ in range(ack["deltas"]):
                apply_delta(answer, client.next_event(timeout=5.0))
            polled = {
                (p["older"], p["newer"]): p
                for p in client.snapshot(query=query)
            }
            assert answer == polled

    def test_two_subscribers_see_the_same_deltas(self, server):
        with ServeClient(port=server.port) as a, \
                ServeClient(port=server.port) as b:
            query = a.register("closest", k=3)
            answer_a = a.subscribe(query)
            answer_b = b.subscribe(query)
            for row in rows(40, seed=11):
                ack = a.ingest([row])
                for _ in range(ack["deltas"] // 2):
                    apply_delta(answer_a, a.next_event(timeout=5.0))
                    apply_delta(answer_b, b.next_event(timeout=5.0))
            assert answer_a == answer_b


class TestWireCheckpoint:
    def test_checkpoint_over_wire_restores_into_fresh_server(
            self, tmp_path, server, client):
        """Acceptance, end-to-end: ``checkpoint`` op mid-stream, restore
        into a *new server process-equivalent*, byte-identical answers
        for every registered query over the wire."""
        from repro.serve.checkpoint import restore_server_monitor

        client.ingest(rows(70))
        q1 = client.register("closest", k=3)
        q2 = client.register("dissimilar", k=2)
        client.ingest(rows(30, seed=3))
        path = str(tmp_path / "wire.ckpt.json")
        meta = client.checkpoint(path)
        assert meta["queries"] == 2
        before = {q: json.dumps(client.snapshot(query=q)) for q in (q1, q2)}

        restored = restore_server_monitor(path)
        with BackgroundServer(restored) as fresh:
            with ServeClient(port=fresh.port) as fresh_client:
                for q in (q1, q2):
                    assert json.dumps(
                        fresh_client.snapshot(query=q)) == before[q]

    def test_checkpoint_bad_path_is_structured_error(self, client):
        from repro.serve.client import ServeRequestError

        client.ingest(rows(5))
        with pytest.raises(ServeRequestError) as err:
            client.checkpoint("/nonexistent-dir-xyz/ck.json")
        assert err.value.code == "checkpoint_failed"


@settings(max_examples=12, deadline=None)
@given(
    data=st.lists(
        st.lists(st.floats(-50, 50, allow_nan=False, allow_infinity=False),
                 min_size=2, max_size=2),
        min_size=1, max_size=40,
    ),
    k=st.integers(1, 6),
    scoring=st.sampled_from(sorted(SCORING_NAMES)),
    window=st.integers(4, 24),
)
def test_property_wire_snapshot_equals_library_oracle(
        data, k, scoring, window):
    """Any stream pushed through the socket answers exactly like the
    library's ``snapshot_query`` oracle on an identical monitor — with
    the server's engine running under the runtime invariant auditor."""
    session = ServerMonitor(window, 2, audit=True)
    with BackgroundServer(session) as background:
        with ServeClient(port=background.port) as client:
            ack = client.ingest(data)
            assert ack["ingested"] == len(data)
            wire_answer = client.snapshot(scoring, k)

    oracle = TopKPairsMonitor(window, 2)
    oracle.extend(data)
    factory = SCORING_NAMES[scoring]
    expected = [
        {"older": p.older.seq, "newer": p.newer.seq, "score": p.score}
        for p in oracle.snapshot_query(factory(2), k)
    ]
    got = [
        {"older": p["older"], "newer": p["newer"], "score": p["score"]}
        for p in wire_answer
    ]
    assert got == expected
