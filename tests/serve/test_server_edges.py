"""Protocol edge cases against a live server: malformed input, broken
connections, backpressure.  The server must answer every bad frame with
a structured error and never die."""

from __future__ import annotations

import json
import socket

import pytest

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.server import BackgroundServer
from repro.serve.session import ServerMonitor


@pytest.fixture()
def server():
    with BackgroundServer(ServerMonitor(64, 2)) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


def raw_connection(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
    sock_file = sock.makefile("rwb")
    hello = json.loads(sock_file.readline())
    assert hello["event"] == "hello"
    return sock, sock_file


def roundtrip(sock_file, line: bytes) -> dict:
    sock_file.write(line)
    sock_file.flush()
    return json.loads(sock_file.readline())


class TestMalformedFrames:
    def test_malformed_json_gets_bad_json_error(self, server):
        sock, f = raw_connection(server)
        response = roundtrip(f, b"{not json at all\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_json"
        # the connection survives: a good frame still works
        response = roundtrip(f, b'{"op":"stats","id":1}\n')
        assert response["ok"] is True
        sock.close()

    def test_non_object_frame_gets_bad_frame(self, server):
        sock, f = raw_connection(server)
        response = roundtrip(f, b"[1,2,3]\n")
        assert response["error"]["code"] == "bad_frame"
        sock.close()

    def test_missing_op_gets_bad_frame(self, server):
        sock, f = raw_connection(server)
        response = roundtrip(f, b'{"id":9}\n')
        assert response["error"]["code"] == "bad_frame"
        assert response["id"] == 9  # id echoed even on errors
        sock.close()

    def test_unknown_op_gets_unknown_op(self, server):
        sock, f = raw_connection(server)
        response = roundtrip(f, b'{"op":"frobnicate","id":2}\n')
        assert response["error"]["code"] == "unknown_op"
        assert "frobnicate" in response["error"]["message"]
        sock.close()

    def test_blank_lines_ignored(self, server):
        sock, f = raw_connection(server)
        f.write(b"\n\n")
        response = roundtrip(f, b'{"op":"stats","id":3}\n')
        assert response["ok"] is True
        sock.close()

    def test_bad_request_fields_get_bad_request(self, server):
        sock, f = raw_connection(server)
        response = roundtrip(f, b'{"op":"ingest","id":4}\n')
        assert response["error"]["code"] == "bad_request"
        response = roundtrip(
            f, b'{"op":"register","scoring":"closest","k":0,"id":5}\n'
        )
        assert response["error"]["code"] == "bad_request"
        sock.close()


class TestOversizedFrames:
    def test_oversized_frame_errors_and_closes(self):
        session = ServerMonitor(64, 2)
        with BackgroundServer(session, max_frame_bytes=4096) as background:
            sock, f = raw_connection(background)
            huge = b'{"op":"ingest","rows":[' \
                + b"[0.1,0.2]," * 2000 + b"[0.1,0.2]]}\n"
            assert len(huge) > 4096
            f.write(huge)
            f.flush()
            response = json.loads(f.readline())
            assert response["error"]["code"] == "frame_too_large"
            # the byte stream cannot be resynchronized: server closes
            assert f.readline() in (b"", None) or \
                json.loads(f.readline()).get("event") == "bye"
            sock.close()
            # and the server is still alive for other clients
            with ServeClient(port=background.port) as client:
                assert client.request("stats")["ok"] is True


class TestDisconnects:
    def test_mid_frame_disconnect_leaves_server_alive(self, server):
        sock, f = raw_connection(server)
        f.write(b'{"op":"stats","id":1')  # no newline: half a frame
        f.flush()
        sock.close()
        with ServeClient(port=server.port) as client:
            assert client.request("stats")["ok"] is True

    def test_abrupt_close_while_subscribed(self, server):
        sock, f = raw_connection(server)
        response = roundtrip(
            f, b'{"op":"register","scoring":"closest","k":2,"id":1}\n'
        )
        query = response["query"]
        roundtrip(
            f,
            json.dumps({"op": "subscribe", "query": query,
                        "id": 2}).encode() + b"\n",
        )
        sock.close()  # vanish without unsubscribe
        with ServeClient(port=server.port) as client:
            # ingest fans out to (now dead) subscribers; must not hang
            ack = client.ingest([[0.1, 0.2], [0.3, 0.4], [0.11, 0.21]])
            assert ack["ingested"] == 3


class TestQueryLifecycleEdges:
    def test_double_register_yields_distinct_handles(self, client):
        first = client.register("closest", k=3)
        second = client.register("closest", k=3)
        assert first != second

    def test_unknown_query_snapshot(self, client):
        with pytest.raises(ServeRequestError) as err:
            client.snapshot(query="q404")
        assert err.value.code == "unknown_query"

    def test_subscribe_then_unregister_sends_closed_event(self, server):
        with ServeClient(port=server.port) as subscriber, \
                ServeClient(port=server.port) as other:
            query = subscriber.register("closest", k=2)
            subscriber.subscribe(query)
            other.unregister(query)
            event = subscriber.next_event(timeout=5.0)
            assert event == {"event": "closed", "query": query}
            # further ingest produces no deltas for the dead query
            other.ingest([[0.1, 0.2], [0.12, 0.22]])
            assert subscriber.next_event(timeout=0.2) is None

    def test_subscribe_unknown_query_rejected(self, client):
        with pytest.raises(ServeRequestError) as err:
            client.request("subscribe", query="q404")
        assert err.value.code == "unknown_query"

    def test_unsubscribe_without_subscription_is_ok(self, client):
        query = client.register("closest", k=2)
        assert client.unsubscribe(query)["ok"] is True


class TestDropBackpressure:
    def test_slow_subscriber_marked_lagged(self):
        session = ServerMonitor(64, 2)
        with BackgroundServer(session, backpressure="drop",
                              queue_depth=1) as background:
            with ServeClient(port=background.port) as slow, \
                    ServeClient(port=background.port) as producer:
                assert slow.hello["backpressure"] == "drop"
                query = slow.register("closest", k=3)
                slow.subscribe(query)
                # Flood without draining `slow`: its depth-1 queue must
                # overflow and drop deltas instead of stalling ingest.
                import random

                rng = random.Random(5)
                for _ in range(40):
                    producer.ingest(
                        [[rng.random(), rng.random()] for _ in range(4)]
                    )
                stats = producer.stats(metrics=True)
                dropped = stats["metrics"][
                    "repro_serve_deltas_dropped_total"]
                assert dropped > 0
                # the next delivered event carries the lagged marker
                lagged = []
                while True:
                    event = slow.next_event(timeout=0.5)
                    if event is None:
                        break
                    if event.get("event") == "delta":
                        lagged.append(event.get("lagged", False))
                assert any(lagged)


class TestShutdownDrain:
    def test_shutdown_sends_bye_to_other_clients(self, server):
        with ServeClient(port=server.port) as watcher, \
                ServeClient(port=server.port) as admin:
            admin.shutdown()
            deadline_events = [
                watcher.next_event(timeout=5.0) for _ in range(1)
            ]
            assert {"event": "bye", "reason": "shutdown"} in deadline_events
