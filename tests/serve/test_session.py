"""Unit tests for the socket-free session layer (repro.serve.session)."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError
from repro.serve.session import SCORING_NAMES, ServerMonitor


def rows(n, seed=0):
    import random

    rng = random.Random(seed)
    return [[rng.random(), rng.random()] for _ in range(n)]


class TestRegistry:
    def test_register_assigns_sequential_handles(self):
        session = ServerMonitor(50, 2)
        assert session.register("closest", 3) == "q1"
        assert session.register("furthest", 2) == "q2"
        specs = [record.spec() for record in session.queries()]
        assert specs[0] == {"handle": "q1", "scoring": "closest", "k": 3,
                            "n": 50}
        assert specs[1]["scoring"] == "furthest"

    def test_double_register_same_spec_is_allowed(self):
        session = ServerMonitor(50, 2)
        first = session.register("closest", 3)
        second = session.register("closest", 3)
        assert first != second
        assert len(session.queries()) == 2

    def test_pinned_handle_and_collision_skip(self):
        session = ServerMonitor(50, 2)
        session.register("closest", 3, handle_id="q1")
        with pytest.raises(ProtocolError) as err:
            session.register("closest", 3, handle_id="q1")
        assert err.value.code == "bad_request"
        # auto-assignment must skip the pinned name
        assert session.register("closest", 2) == "q2"

    def test_unknown_scoring_rejected(self):
        session = ServerMonitor(50, 2)
        with pytest.raises(ProtocolError) as err:
            session.register("sideways", 3)
        assert err.value.code == "bad_request"
        assert "sideways" in str(err.value)

    @pytest.mark.parametrize("bad_k", [0, -1, "3", 2.5, None, True])
    def test_bad_k_rejected(self, bad_k):
        session = ServerMonitor(50, 2)
        with pytest.raises(ProtocolError):
            session.register("closest", bad_k)

    def test_unregister_unknown_query(self):
        session = ServerMonitor(50, 2)
        with pytest.raises(ProtocolError) as err:
            session.unregister("q99")
        assert err.value.code == "unknown_query"

    def test_shared_scoring_instance_one_skyband_group(self):
        session = ServerMonitor(50, 2)
        session.register("closest", 3)
        session.register("closest", 5)
        assert session.scoring_for("closest") is \
            session.scoring_for("closest")
        groups = session.monitor.stats()["groups"]
        assert len(groups) == 1  # both queries share one group

    def test_all_scoring_names_register(self):
        session = ServerMonitor(50, 2)
        for name in SCORING_NAMES:
            session.register(name, 2)
        session.ingest(rows(10))
        for record in session.queries():
            assert len(session.results(record.handle_id)) <= 2


class TestIngestAndDeltas:
    def test_ingest_reports_exact_count_and_seq(self):
        session = ServerMonitor(50, 2)
        assert session.ingest(rows(7)) == (7, 7)
        assert session.ingest(rows(3, seed=1)) == (3, 10)

    def test_deltas_stamped_with_their_tick(self):
        session = ServerMonitor(50, 2)
        handle = session.register("closest", 2)
        session.ingest(rows(10))
        deltas = session.drain_deltas()
        assert deltas, "a filling window must change the answer"
        assert all(event.query == handle for event in deltas)
        ticks = [event.tick for event in deltas]
        assert ticks == sorted(ticks)
        assert ticks[-1] <= 10

    def test_drain_transfers_ownership(self):
        session = ServerMonitor(50, 2)
        session.register("closest", 2)
        session.ingest(rows(5))
        first = session.drain_deltas()
        assert first
        assert session.drain_deltas() == []

    def test_replaying_deltas_reproduces_results(self):
        session = ServerMonitor(20, 2)
        handle = session.register("closest", 3)
        session.ingest(rows(4))
        answer = {
            (p.older.seq, p.newer.seq) for p in session.results(handle)
        }
        session.drain_deltas()
        for row in rows(30, seed=2):
            session.ingest([row])
            for event in session.drain_deltas():
                for pair in event.left:
                    answer.discard((pair.older.seq, pair.newer.seq))
                for pair in event.entered:
                    answer.add((pair.older.seq, pair.newer.seq))
            polled = {
                (p.older.seq, p.newer.seq) for p in session.results(handle)
            }
            assert answer == polled

    def test_unregistered_query_stops_producing_deltas(self):
        session = ServerMonitor(50, 2)
        handle = session.register("closest", 2)
        session.ingest(rows(5))
        session.drain_deltas()
        session.unregister(handle)
        session.ingest(rows(5, seed=3))
        assert session.drain_deltas() == []


class TestStats:
    def test_stats_lists_registered_queries(self):
        session = ServerMonitor(50, 2)
        session.register("closest", 3)
        payload = session.stats()
        assert payload["queries"] == [
            {"handle": "q1", "scoring": "closest", "k": 3, "n": 50}
        ]
