"""Warm-standby replication and failover.

Boots a real primary and a real standby (both on loopback TCP), checks
the standby bootstraps from the shipped checkpoint, tails the
replication feed byte-identically, refuses ingest until promoted, and —
the acceptance property — that a subscriber connected to the standby
sees every answer delta exactly once across bootstrap, replication and
promotion: no delta lost, none duplicated.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.serve.client import ServeClient, ServeRequestError, apply_delta
from repro.serve.server import BackgroundServer
from repro.serve.session import ServerMonitor
from repro.serve.standby import connect_standby


def rows(n, seed=0):
    rng = random.Random(seed)
    return [[rng.random(), rng.random()] for _ in range(n)]


def wait_for_seq(client, target, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.epoch()["now_seq"] >= target:
            return
    raise AssertionError(f"standby never reached seq {target}")


@pytest.fixture()
def primary():
    session = ServerMonitor(32, 2, seed=5)
    with BackgroundServer(session) as background:
        with ServeClient(port=background.port) as client:
            client.register("closest", 3)
            client.register("furthest", 2)
            client.ingest(rows(80))
        yield background


def boot_standby(primary, **kwargs):
    session, tailer = connect_standby("127.0.0.1", primary.port, **kwargs)
    background = BackgroundServer(session, role="standby", standby=tailer)
    return background.start(), session, tailer


class TestStandby:
    def test_bootstrap_matches_primary(self, primary):
        standby, session, tailer = boot_standby(primary)
        try:
            with ServeClient(port=primary.port) as p, \
                    ServeClient(port=standby.port) as s:
                assert s.hello["role"] == "standby"
                assert p.hello["role"] == "primary"
                assert s.epoch()["now_seq"] == p.epoch()["now_seq"]
                assert s.snapshot(query="q1") == p.snapshot(query="q1")
        finally:
            standby.stop()

    def test_standby_tails_and_rejects_ingest(self, primary):
        standby, session, tailer = boot_standby(primary)
        try:
            with ServeClient(port=primary.port) as p, \
                    ServeClient(port=standby.port) as s:
                with pytest.raises(ServeRequestError) as err:
                    s.ingest([[0.5, 0.5]])
                assert err.value.code == "not_primary"
                for offset in range(0, 60, 20):
                    ack = p.ingest(rows(20, seed=offset + 1))
                wait_for_seq(s, ack["now_seq"])
                for query in ("q1", "q2"):
                    assert json.dumps(s.snapshot(query=query)) == \
                        json.dumps(p.snapshot(query=query))
        finally:
            standby.stop()

    def test_promote_after_primary_death(self, primary):
        """The failover drill: kill the primary, promote the standby,
        keep serving — subscribers lose no delta and see none twice."""
        standby, session, tailer = boot_standby(primary)
        try:
            subscriber = ServeClient(port=standby.port)
            answer = subscriber.subscribe("q1")
            with ServeClient(port=primary.port) as p:
                ack = p.ingest(rows(40, seed=11))
            wait_for_seq(subscriber, ack["now_seq"])
            primary.stop()  # the primary goes away mid-stream

            control = ServeClient(port=standby.port)
            promoted = control.promote()
            assert promoted["epoch"] == 1
            assert promoted["role"] == "primary"
            # promote is idempotent-hostile by design: a second promote
            # is a client bug and says so
            with pytest.raises(ServeRequestError) as err:
                control.promote()
            assert err.value.code == "bad_request"

            # the promoted server accepts ingest and keeps the epoch
            ack = control.ingest(rows(20, seed=12))
            assert control.epoch()["epoch"] == 1

            # drain every delta the subscriber was sent; ticks must be
            # strictly increasing (no duplicates) and the final applied
            # answer must equal the server's own (no losses)
            ticks = []
            while True:
                event = subscriber.next_event(timeout=0.5)
                if event is None:
                    break
                if event.get("event") != "delta" \
                        or event.get("query") != "q1":
                    continue
                apply_delta(answer, event)
                ticks.append(event["tick"])
            assert ticks == sorted(set(ticks))
            served = {(p["older"], p["newer"]): p
                      for p in control.snapshot(query="q1")}
            assert answer == served
            subscriber.close()
            control.close()
        finally:
            standby.stop()

    def test_promote_on_primary_is_rejected(self):
        session = ServerMonitor(16, 2)
        with BackgroundServer(session) as background:
            with ServeClient(port=background.port) as client:
                with pytest.raises(ServeRequestError) as err:
                    client.promote()
                assert err.value.code == "bad_request"

    def test_delta_log_journal(self, primary, tmp_path):
        log_path = str(tmp_path / "deltas.jsonl")
        standby, session, tailer = boot_standby(primary,
                                                delta_log=log_path)
        try:
            with ServeClient(port=primary.port) as p, \
                    ServeClient(port=standby.port) as s:
                ack = p.ingest(rows(40, seed=21))
                wait_for_seq(s, ack["now_seq"])
            # The journal append runs on the executor after now_seq is
            # already visible, so give the write a moment to land.
            deadline = time.monotonic() + 5.0
            while not os.path.exists(log_path) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            records = [json.loads(line) for line in open(log_path)]
            assert records, "replicated deltas were not journaled"
            for record in records:
                assert set(record) == {"query", "tick", "entered",
                                       "left", "epoch"}
                assert record["query"] in ("q1", "q2")
        finally:
            standby.stop()

    def test_fenced_checkpoint_after_promote(self, primary, tmp_path):
        """After a failover the old primary cannot overwrite the
        promoted lineage's checkpoint file."""
        standby, session, tailer = boot_standby(primary)
        try:
            path = str(tmp_path / "ck.json")
            with ServeClient(port=standby.port) as s:
                s.promote()
                s.checkpoint(path)  # epoch 1 on disk
            from repro.serve.checkpoint import (
                checkpoint_document, write_checkpoint_document,
            )
            old_primary_session = ServerMonitor(32, 2)
            document, _meta = checkpoint_document(old_primary_session)
            with pytest.raises(Exception) as err:
                write_checkpoint_document(document, path, 0)
            assert "epoch" in str(err.value)
        finally:
            standby.stop()
