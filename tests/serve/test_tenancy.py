"""Multi-tenant serving: auth, quotas, fairness, isolation.

Unit coverage for :mod:`repro.serve.tenancy` (token bucket refill
boundaries, tenants-file parsing, registry auth/reload, multiplexer
fairness) plus wire-level coverage against a real server: auth edges
(wrong/missing/revoked/admin), quota rejections with exact mid-batch
accounting, per-peer metric label eviction, the client's stall-proof
request deadline, per-namespace checkpoints, and a multi-tenant warm
standby.  The namespace-isolation *property* test lives in
test_tenancy_property.py.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.exceptions import (
    ProtocolError,
    ServeError,
    ServeTimeoutError,
    TenantConfigError,
)
from repro.serve.checkpoint import restore_namespace_checkpoints
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.server import BackgroundServer
from repro.serve.session import ServerMonitor
from repro.serve.standby import connect_standby
from repro.serve.tenancy import (
    FairMultiplexer,
    NamespaceRegistry,
    TenantQuotas,
    TenantSpec,
    TokenBucket,
    load_tenants_file,
    save_tenants_file,
    valid_namespace,
)

ALPHA_TOKEN = "alpha-secret-token"
BETA_TOKEN = "beta-secret-token"
ADMIN_TOKEN = "admin-secret-token"


def make_registry(beta_quotas=None, window=64, audit=False):
    specs = {
        "alpha": TenantSpec("alpha", ALPHA_TOKEN),
        "beta": TenantSpec("beta", BETA_TOKEN,
                           beta_quotas or TenantQuotas()),
    }
    return NamespaceRegistry(
        specs,
        lambda name, spec: ServerMonitor(window, 2, audit=audit),
        admin_token=ADMIN_TOKEN,
    )


@pytest.fixture()
def tenant_server():
    with BackgroundServer(None, tenants=make_registry()) as background:
        yield background


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_grants_whole_rows(self):
        clock = [0.0]
        bucket = TokenBucket(10.0, 5.0, clock=lambda: clock[0])
        assert bucket.grant(3) == 3  # burst pays immediately
        assert bucket.grant(5) == 2  # only 2 tokens left
        assert bucket.grant(1) == 0  # empty, no time passed

    def test_refill_boundary_truncates_to_whole_rows(self):
        clock = [0.0]
        bucket = TokenBucket(10.0, 5.0, clock=lambda: clock[0])
        assert bucket.grant(5) == 5
        clock[0] += 0.25  # exactly 2.5 tokens accrue
        assert bucket.grant(99) == 2  # the half token stays banked
        clock[0] += 0.25  # banked 0.5 + 2.5 = 3.0 whole rows
        assert bucket.grant(99) == 3

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(10.0, 4.0, clock=lambda: clock[0])
        assert bucket.grant(4) == 4
        clock[0] += 100.0
        assert bucket.grant(99) == 4  # not 1000

    def test_burst_defaults_to_rate_and_validates(self):
        assert TokenBucket(7.0).burst == 7.0
        assert TokenBucket(0.5).burst == 1.0  # always >= one row
        with pytest.raises(TenantConfigError):
            TokenBucket(0.0)
        with pytest.raises(TenantConfigError):
            TokenBucket(10.0, 0.5)

    def test_zero_request_is_free(self):
        bucket = TokenBucket(10.0, 5.0, clock=lambda: 0.0)
        assert bucket.grant(0) == 0
        assert bucket.tokens == 5.0


# ----------------------------------------------------------------------
# tenants file + specs
# ----------------------------------------------------------------------
class TestTenantsFile:
    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "tenants.json")
        specs = {
            "alpha": TenantSpec("alpha", ALPHA_TOKEN,
                                TenantQuotas(max_queries=2)),
            "beta": TenantSpec("beta", BETA_TOKEN, revoked=True),
        }
        save_tenants_file(path, specs, ADMIN_TOKEN)
        loaded, admin = load_tenants_file(path)
        assert admin == ADMIN_TOKEN
        assert sorted(loaded) == ["alpha", "beta"]
        assert loaded["alpha"].quotas.max_queries == 2
        assert loaded["beta"].revoked

    def test_toml_parses(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841  py>=3.11
        path = tmp_path / "tenants.toml"
        path.write_text(
            f'admin_token = "{ADMIN_TOKEN}"\n'
            f'[tenants.alpha]\ntoken = "{ALPHA_TOKEN}"\n'
            f'[tenants.alpha.quotas]\nmax_queries = 3\n'
        )
        specs, admin = load_tenants_file(str(path))
        assert admin == ADMIN_TOKEN
        assert specs["alpha"].quotas.max_queries == 3

    def test_toml_is_read_only_for_the_cli(self, tmp_path):
        with pytest.raises(TenantConfigError, match="JSON"):
            save_tenants_file(str(tmp_path / "x.toml"), {}, None)

    def test_rejects_unknown_fields_and_bad_values(self, tmp_path):
        path = tmp_path / "tenants.json"
        for document in (
            {"tenants": {"a": {"token": "long-enough-token",
                               "surprise": 1}}},
            {"tenants": {"a": {"token": "short"}}},
            {"tenants": {"..": {"token": "long-enough-token"}}},
            {"tenants": {"a": {"token": "long-enough-token",
                               "quotas": {"max_queries": 0}}}},
            {"admin_token": "short"},
            {"unknown_top": {}},
        ):
            path.write_text(json.dumps(document))
            with pytest.raises(TenantConfigError):
                load_tenants_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TenantConfigError):
            load_tenants_file(str(tmp_path / "absent.json"))

    def test_namespace_names_block_traversal(self):
        assert valid_namespace("alpha-1.prod")
        for name in ("", ".", "..", ".hidden", "a/b", "a b", "-x",
                     "x" * 65, 7, None):
            assert not valid_namespace(name)

    def test_burst_requires_rate(self):
        with pytest.raises(TenantConfigError):
            TenantQuotas(burst_rows=5)


# ----------------------------------------------------------------------
# registry: auth + reload
# ----------------------------------------------------------------------
class TestRegistry:
    def test_auth_failures_are_uniform(self):
        registry = make_registry()
        registry.specs["beta"].revoked = True
        messages = set()
        for name, token in (("alpha", "wrong-token-here"),
                            ("alpha", None),
                            ("ghost", ALPHA_TOKEN),
                            ("beta", BETA_TOKEN)):  # revoked
            with pytest.raises(ProtocolError) as err:
                registry.authenticate(name, token)
            assert err.value.code == "unauthorized"
            messages.add(str(err.value))
        # one message for every failure mode: nothing to enumerate from
        assert len(messages) == 1
        assert registry.authenticate("alpha", ALPHA_TOKEN).name == "alpha"

    def test_admin_auth(self):
        registry = make_registry()
        registry.authenticate_admin(ADMIN_TOKEN)
        with pytest.raises(ProtocolError):
            registry.authenticate_admin("wrong-admin-token")
        with pytest.raises(ProtocolError):
            NamespaceRegistry({}).authenticate_admin(None)

    def test_lazy_creation_needs_spec_or_open(self):
        registry = make_registry()
        assert registry.namespace("alpha").name == "alpha"
        with pytest.raises(ProtocolError):
            registry.namespace("ghost")

    def test_reload_revokes_and_swaps_buckets(self):
        registry = make_registry()
        registry.namespace("alpha")
        registry.namespace("beta")
        alpha_session = registry.get("alpha").session
        new_specs = {
            "alpha": TenantSpec(
                "alpha", ALPHA_TOKEN,
                TenantQuotas(ingest_rows_per_sec=5.0),
            ),
            "beta": TenantSpec("beta", BETA_TOKEN, revoked=True),
        }
        stale = registry.reload(new_specs, ADMIN_TOKEN)
        assert stale == ["beta"]
        assert registry.get("alpha").bucket is not None  # quota applied
        # the session survived the reload: same engine, same window
        assert registry.get("alpha").session is alpha_session


# ----------------------------------------------------------------------
# fair multiplexer
# ----------------------------------------------------------------------
class TestFairMultiplexer:
    def test_round_robin_interleaves_namespaces(self):
        async def scenario():
            mux = FairMultiplexer(max_pending=8)
            order = []

            def job(name):
                async def run():
                    order.append(name)
                return run

            # Queue a burst for 'heavy' first, then one for 'light':
            # round-robin must schedule light's job after at most one
            # more heavy job, not behind the whole burst.
            jobs = [asyncio.ensure_future(mux.submit("heavy", job("heavy")))
                    for _ in range(4)]
            jobs.append(asyncio.ensure_future(
                mux.submit("light", job("light"))
            ))
            await asyncio.gather(*jobs)
            return order

        order = asyncio.run(scenario())
        assert order.index("light") <= 2
        assert order.count("heavy") == 4

    def test_one_in_flight_per_namespace(self):
        async def scenario():
            mux = FairMultiplexer(max_pending=8)
            active = {"now": 0, "peak": 0}
            release = asyncio.Event()

            async def tick():
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
                await release.wait()
                active["now"] -= 1

            jobs = [asyncio.ensure_future(mux.submit("ns", tick))
                    for _ in range(3)]
            await asyncio.sleep(0.01)
            release.set()
            await asyncio.gather(*jobs)
            return active["peak"]

        assert asyncio.run(scenario()) == 1

    def test_submit_backpressure_bounds_the_queue(self):
        async def scenario():
            mux = FairMultiplexer(max_pending=2)
            gate = asyncio.Event()

            async def blocked():
                await gate.wait()

            first = asyncio.ensure_future(mux.submit("ns", blocked))
            second = asyncio.ensure_future(mux.submit("ns", blocked))
            # Third submitter must park on the semaphore, not enqueue.
            third = asyncio.ensure_future(mux.submit("ns", blocked))
            await asyncio.sleep(0.01)
            stats = mux.stats()
            gate.set()
            await asyncio.gather(first, second, third)
            return stats

        stats = asyncio.run(scenario())
        assert stats["queued"] <= 1  # one running, one queued, one parked

    def test_stop_fails_queued_jobs(self):
        async def scenario():
            mux = FairMultiplexer(max_pending=4)
            gate = asyncio.Event()

            async def blocked():
                await gate.wait()

            running = asyncio.ensure_future(mux.submit("ns", blocked))
            queued = asyncio.ensure_future(mux.submit("ns", blocked))
            await asyncio.sleep(0.01)
            mux.stop()
            with pytest.raises(ServeError):
                await queued
            gate.set()
            await running
            with pytest.raises(ServeError):
                await mux.submit("ns", blocked)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# wire auth edges
# ----------------------------------------------------------------------
class TestWireAuth:
    def test_hello_announces_multi_tenant(self, tenant_server):
        with ServeClient(port=tenant_server.port) as client:
            assert client.hello["multi_tenant"] is True
            assert "epoch" not in client.hello  # nothing leaks pre-auth

    def test_ops_require_auth(self, tenant_server):
        with ServeClient(port=tenant_server.port) as client:
            for call in (lambda: client.ingest([[0.1, 0.2]]),
                         lambda: client.register("closest", 2),
                         lambda: client.snapshot(scoring="closest", k=2),
                         lambda: client.checkpoint(ship=True),
                         lambda: client.stats()):
                with pytest.raises(ServeRequestError) as err:
                    call()
                assert err.value.code == "unauthorized"

    def test_wrong_missing_revoked_tokens(self, tenant_server):
        with ServeClient(port=tenant_server.port) as client:
            for kwargs in ({"namespace": "alpha", "token": "wrong-token-1"},
                           {"namespace": "alpha"},
                           {"namespace": "ghost", "token": ALPHA_TOKEN},
                           {"token": "wrong-admin-tok", "admin": True}):
                with pytest.raises(ServeRequestError) as err:
                    client.auth(**kwargs)
                assert err.value.code == "unauthorized"
            # still usable after failed attempts
            ack = client.auth("alpha", ALPHA_TOKEN)
            assert ack["namespace"] == "alpha"
            assert ack["epoch"] == 0

    def test_revoked_tenant_cannot_auth(self):
        registry = make_registry()
        registry.specs["beta"].revoked = True
        with BackgroundServer(None, tenants=registry) as background:
            with ServeClient(port=background.port) as client:
                with pytest.raises(ServeRequestError) as err:
                    client.auth("beta", BETA_TOKEN)
                assert err.value.code == "unauthorized"

    def test_admin_ops_are_gated(self, tenant_server):
        with ServeClient(port=tenant_server.port) as tenant:
            tenant.auth("alpha", ALPHA_TOKEN)
            for call in (tenant.replicate, tenant.promote,
                         tenant.shutdown,
                         lambda: tenant.checkpoint(scope="all")):
                with pytest.raises(ServeRequestError) as err:
                    call()
                assert err.value.code == "unauthorized"
        with ServeClient(port=tenant_server.port) as admin:
            admin.auth(token=ADMIN_TOKEN, admin=True)
            ship = admin.checkpoint(ship=True, scope="all")
            assert ship["namespaces"] == ["alpha"]  # beta never touched

    def test_auth_rejected_on_single_tenant_server(self):
        session = ServerMonitor(16, 2)
        with BackgroundServer(session) as background:
            with ServeClient(port=background.port) as client:
                assert client.hello["multi_tenant"] is False
                with pytest.raises(ServeRequestError) as err:
                    client.auth("alpha", ALPHA_TOKEN)
                assert err.value.code == "bad_request"

    def test_epoch_discloses_by_privilege(self, tenant_server):
        with ServeClient(port=tenant_server.port) as probe:
            ack = probe.epoch()
            assert ack["role"] == "primary"
            assert "epoch" not in ack and "namespaces" not in ack
        with ServeClient(port=tenant_server.port) as tenant:
            tenant.auth("alpha", ALPHA_TOKEN)
            ack = tenant.epoch()
            assert ack["namespace"] == "alpha" and ack["epoch"] == 0
            assert "namespaces" not in ack
        with ServeClient(port=tenant_server.port) as admin:
            admin.auth(token=ADMIN_TOKEN, admin=True)
            assert "alpha" in admin.epoch()["namespaces"]


# ----------------------------------------------------------------------
# wire quotas
# ----------------------------------------------------------------------
class TestWireQuotas:
    def test_mid_batch_rate_cut_reports_exact_count(self):
        registry = make_registry(
            TenantQuotas(ingest_rows_per_sec=1.0, burst_rows=4.0)
        )
        with BackgroundServer(None, tenants=registry) as background:
            with ServeClient(port=background.port) as client:
                client.auth("beta", BETA_TOKEN)
                with pytest.raises(ServeRequestError) as err:
                    client.ingest([[float(i), float(i)] for i in range(9)])
                assert err.value.code == "quota_exceeded"
                details = err.value.details
                assert details["quota"] == "ingest_rows_per_sec"
                assert details["requested"] == 9
                assert details["ingested"] == 4  # the burst prefix
                assert details["now_seq"] == 4
                # the admitted prefix really entered the stream
                assert client.epoch()["now_seq"] == 4

    def test_zero_grant_ingests_nothing(self):
        registry = make_registry(
            TenantQuotas(ingest_rows_per_sec=1.0, burst_rows=1.0)
        )
        with BackgroundServer(None, tenants=registry) as background:
            with ServeClient(port=background.port) as client:
                client.auth("beta", BETA_TOKEN)
                client.ingest([[0.0, 0.0]])  # drains the burst
                with pytest.raises(ServeRequestError) as err:
                    client.ingest([[1.0, 1.0]])
                assert err.value.details["ingested"] == 0
                assert client.epoch()["now_seq"] == 1

    def test_max_queries(self):
        registry = make_registry(TenantQuotas(max_queries=1))
        with BackgroundServer(None, tenants=registry) as background:
            with ServeClient(port=background.port) as client:
                client.auth("beta", BETA_TOKEN)
                client.register("closest", 2)
                with pytest.raises(ServeRequestError) as err:
                    client.register("furthest", 2)
                assert err.value.code == "quota_exceeded"
                assert err.value.details["quota"] == "max_queries"
                # unregister frees the slot
                client.unregister("q1")
                client.register("furthest", 2)

    def test_max_subscribers_counts_across_connections(self):
        registry = make_registry(TenantQuotas(max_subscribers=1))
        with BackgroundServer(None, tenants=registry) as background:
            first = ServeClient(port=background.port)
            second = ServeClient(port=background.port)
            try:
                first.auth("beta", BETA_TOKEN)
                second.auth("beta", BETA_TOKEN)
                query = first.register("closest", 2)
                first.subscribe(query)
                with pytest.raises(ServeRequestError) as err:
                    second.subscribe(query)
                assert err.value.code == "quota_exceeded"
                assert err.value.details["quota"] == "max_subscribers"
                first.unsubscribe(query)
                second.subscribe(query)
            finally:
                first.close()
                second.close()

    def test_quotas_do_not_leak_across_namespaces(self):
        registry = make_registry(TenantQuotas(max_queries=1))
        with BackgroundServer(None, tenants=registry) as background:
            with ServeClient(port=background.port) as alpha, \
                    ServeClient(port=background.port) as beta:
                alpha.auth("alpha", ALPHA_TOKEN)
                beta.auth("beta", BETA_TOKEN)
                beta.register("closest", 2)
                # alpha is unlimited; beta's quota is beta's alone
                for _ in range(3):
                    alpha.register("closest", 2)
                with pytest.raises(ServeRequestError):
                    beta.register("closest", 2)


# ----------------------------------------------------------------------
# namespace isolation (wire-level; the hypothesis property test is in
# test_tenancy_property.py)
# ----------------------------------------------------------------------
class TestIsolation:
    def test_streams_and_answers_are_disjoint(self, tenant_server):
        with ServeClient(port=tenant_server.port) as alpha, \
                ServeClient(port=tenant_server.port) as beta:
            alpha.auth("alpha", ALPHA_TOKEN)
            beta.auth("beta", BETA_TOKEN)
            alpha.ingest([[0.1, 0.9], [0.2, 0.8], [0.15, 0.85]])
            beta.ingest([[5.0, 5.0]])
            assert alpha.epoch()["now_seq"] == 3
            assert beta.epoch()["now_seq"] == 1
            assert len(beta.snapshot(scoring="closest", k=5)) == 0
            assert len(alpha.snapshot(scoring="closest", k=5)) == 3

    def test_query_handles_are_per_namespace(self, tenant_server):
        with ServeClient(port=tenant_server.port) as alpha, \
                ServeClient(port=tenant_server.port) as beta:
            alpha.auth("alpha", ALPHA_TOKEN)
            beta.auth("beta", BETA_TOKEN)
            q_alpha = alpha.register("closest", 2)
            q_beta = beta.register("furthest", 3)
            assert q_alpha == q_beta == "q1"  # same handle, two worlds
            alpha.ingest([[0.1, 0.9], [0.2, 0.8]])
            assert len(alpha.snapshot(query="q1")) == 1
            assert len(beta.snapshot(query="q1")) == 0

    def test_deltas_fan_out_only_to_the_owning_namespace(
            self, tenant_server):
        with ServeClient(port=tenant_server.port) as alpha, \
                ServeClient(port=tenant_server.port) as beta:
            alpha.auth("alpha", ALPHA_TOKEN)
            beta.auth("beta", BETA_TOKEN)
            qa = alpha.register("closest", 2)
            qb = beta.register("closest", 2)
            alpha.subscribe(qa)
            beta.subscribe(qb)
            alpha.ingest([[0.1, 0.9], [0.2, 0.8]])
            event = alpha.next_event(timeout=5.0)
            assert event is not None and event["event"] == "delta"
            assert beta.next_event(timeout=0.2) is None


# ----------------------------------------------------------------------
# per-namespace checkpoints
# ----------------------------------------------------------------------
class TestNamespaceCheckpoints:
    def test_scope_all_writes_and_restores_every_namespace(self, tmp_path):
        registry = make_registry()
        with BackgroundServer(None, tenants=registry,
                              checkpoint_dir=str(tmp_path)) as background:
            with ServeClient(port=background.port) as alpha, \
                    ServeClient(port=background.port) as beta, \
                    ServeClient(port=background.port) as admin:
                alpha.auth("alpha", ALPHA_TOKEN)
                beta.auth("beta", BETA_TOKEN)
                admin.auth(token=ADMIN_TOKEN, admin=True)
                alpha.ingest([[0.1, 0.9], [0.2, 0.8]])
                alpha.register("closest", 2)
                beta.ingest([[1.0, 1.0]])
                ack = admin.checkpoint(scope="all")
                assert ack["namespaces"] == ["alpha", "beta"]
        sessions = restore_namespace_checkpoints(str(tmp_path))
        assert sorted(sessions) == ["alpha", "beta"]
        assert sessions["alpha"].monitor.manager.now_seq == 2
        assert sessions["alpha"].namespace == "alpha"
        assert len(sessions["alpha"].queries()) == 1
        assert sessions["beta"].monitor.manager.now_seq == 1

    def test_tenant_checkpoint_path_must_be_bare(self, tmp_path):
        registry = make_registry()
        with BackgroundServer(None, tenants=registry,
                              checkpoint_dir=str(tmp_path)) as background:
            with ServeClient(port=background.port) as client:
                client.auth("alpha", ALPHA_TOKEN)
                client.ingest([[0.1, 0.2]])
                for path in ("../escape.ckpt", "/tmp/abs.ckpt", "a/b.ckpt"):
                    with pytest.raises(ServeRequestError) as err:
                        client.checkpoint(path)
                    assert err.value.code == "bad_request"
                client.checkpoint("mine.ckpt")
                assert (tmp_path / "mine.ckpt").exists()

    def test_directory_restore_rejects_misrouted_document(self, tmp_path):
        registry = make_registry()
        with BackgroundServer(None, tenants=registry,
                              checkpoint_dir=str(tmp_path)) as background:
            with ServeClient(port=background.port) as alpha:
                alpha.auth("alpha", ALPHA_TOKEN)
                alpha.ingest([[0.1, 0.2]])
                alpha.checkpoint("alpha.ckpt")
        # rename the file to another tenant: restore must refuse
        (tmp_path / "alpha.ckpt").rename(tmp_path / "beta.ckpt")
        from repro.exceptions import CheckpointError

        with pytest.raises(CheckpointError, match="beta"):
            restore_namespace_checkpoints(str(tmp_path))


# ----------------------------------------------------------------------
# multi-tenant warm standby
# ----------------------------------------------------------------------
class TestMultiTenantStandby:
    def test_bootstrap_tail_promote(self):
        primary_registry = make_registry()
        with BackgroundServer(None, tenants=primary_registry) as primary:
            alpha = ServeClient(port=primary.port)
            beta = ServeClient(port=primary.port)
            try:
                alpha.auth("alpha", ALPHA_TOKEN)
                beta.auth("beta", BETA_TOKEN)
                alpha.ingest([[0.1, 0.9], [0.2, 0.8]])
                beta.ingest([[1.0, 1.0]])

                standby_registry = make_registry()
                restored, tailer = connect_standby(
                    "127.0.0.1", primary.port, registry=standby_registry,
                )
                assert restored is standby_registry
                assert sorted(ns.name for ns in
                              standby_registry.namespaces()) \
                    == ["alpha", "beta"]
                with BackgroundServer(None, tenants=standby_registry,
                                      role="standby",
                                      standby=tailer) as standby:
                    alpha.ingest([[0.3, 0.7]])
                    beta.ingest([[2.0, 2.0], [3.0, 3.0]])
                    deadline = time.monotonic() + 10.0
                    want = {"alpha": 3, "beta": 3}
                    while time.monotonic() < deadline:
                        seqs = {
                            ns.name: ns.session.monitor.manager.now_seq
                            for ns in standby_registry.namespaces()
                        }
                        if seqs == want:
                            break
                        time.sleep(0.02)
                    assert seqs == want

                    with ServeClient(port=standby.port) as client:
                        client.auth("alpha", ALPHA_TOKEN)
                        # a standby rejects tenant ingest too
                        with pytest.raises(ServeRequestError) as err:
                            client.ingest([[9.0, 9.0]])
                        assert err.value.code == "not_primary"
                    with ServeClient(port=standby.port) as admin:
                        admin.auth(token=ADMIN_TOKEN, admin=True)
                        ack = admin.promote()
                        assert ack["role"] == "primary"
                        assert ack["namespaces"]["alpha"]["epoch"] == 1
                        assert ack["namespaces"]["beta"]["epoch"] == 1
            finally:
                alpha.close()
                beta.close()

    def test_multi_tenant_primary_requires_registry(self):
        with BackgroundServer(None, tenants=make_registry()) as primary:
            with pytest.raises(ServeError, match="multi-tenant"):
                connect_standby("127.0.0.1", primary.port)

    def test_single_tenant_primary_rejects_registry(self):
        with BackgroundServer(ServerMonitor(16, 2)) as primary:
            with pytest.raises(ServeError, match="single-tenant"):
                connect_standby("127.0.0.1", primary.port,
                                registry=make_registry())


# ----------------------------------------------------------------------
# tenants-file hot reload through a live server
# ----------------------------------------------------------------------
class TestHotReload:
    def test_reload_revokes_live_connections(self, tmp_path):
        path = str(tmp_path / "tenants.json")
        specs = {
            "alpha": TenantSpec("alpha", ALPHA_TOKEN),
            "beta": TenantSpec("beta", BETA_TOKEN),
        }
        save_tenants_file(path, specs, ADMIN_TOKEN)
        registry = NamespaceRegistry(
            specs,
            lambda name, spec: ServerMonitor(16, 2),
            admin_token=ADMIN_TOKEN, path=path,
        )
        with BackgroundServer(None, tenants=registry) as background:
            beta = ServeClient(port=background.port)
            try:
                beta.auth("beta", BETA_TOKEN)
                beta.ingest([[1.0, 1.0]])
                specs["beta"] = TenantSpec("beta", BETA_TOKEN,
                                           revoked=True)
                save_tenants_file(path, specs, ADMIN_TOKEN)
                stale = asyncio.run_coroutine_threadsafe(
                    background.server.reload_tenants(),
                    background._loop,
                ).result(timeout=10.0)
                assert stale == ["beta"]
                # the connection was farewelled and closed
                event = beta.next_event(timeout=5.0)
                assert event is not None and event["event"] == "bye"
                with pytest.raises(ServeError):
                    while True:
                        beta.next_event(timeout=5.0)
            finally:
                beta.close()
            # new auth for the revoked tenant fails; alpha still works
            with ServeClient(port=background.port) as client:
                with pytest.raises(ServeRequestError):
                    client.auth("beta", BETA_TOKEN)
                client.auth("alpha", ALPHA_TOKEN)

    def test_malformed_reload_keeps_old_config(self, tmp_path):
        path = str(tmp_path / "tenants.json")
        specs = {"alpha": TenantSpec("alpha", ALPHA_TOKEN)}
        save_tenants_file(path, specs, ADMIN_TOKEN)
        registry = NamespaceRegistry(
            specs,
            lambda name, spec: ServerMonitor(16, 2),
            admin_token=ADMIN_TOKEN, path=path,
        )
        with BackgroundServer(None, tenants=registry) as background:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("{not json")
            stale = asyncio.run_coroutine_threadsafe(
                background.server.reload_tenants(),
                background._loop,
            ).result(timeout=10.0)
            assert stale == []
            with ServeClient(port=background.port) as client:
                client.auth("alpha", ALPHA_TOKEN)  # old config survives


# ----------------------------------------------------------------------
# satellite: per-peer metric label cardinality stays bounded
# ----------------------------------------------------------------------
class TestPeerLabelCardinality:
    def _materialize_peer_series(self, port, count):
        """Connect ``count`` subscribers and tick once so fan-out mints
        their per-peer queue-depth series; returns the open clients."""
        clients = []
        feeder = ServeClient(port=port)
        query = feeder.register("closest", 2)
        for _ in range(count):
            client = ServeClient(port=port)
            client.subscribe(query)
            clients.append(client)
        feeder.ingest([[0.1, 0.9], [0.2, 0.8]])
        for client in clients:
            assert client.next_event(timeout=5.0) is not None
        return feeder, clients

    def test_cap_and_eviction(self):
        session = ServerMonitor(32, 2)
        with BackgroundServer(session, max_peer_labels=2) as background:
            server = background.server
            feeder, clients = self._materialize_peer_series(
                background.port, 4,
            )
            try:
                # 2 named peers + the shared overflow bucket, never 4
                assert len(server._m_sub_queue) <= 3
                assert ("overflow",) in server._m_sub_queue
                named = [key for key in server._m_sub_queue._children
                         if key != ("overflow",)]
                assert len(named) == 2
            finally:
                for client in clients:
                    client.close()
            # disconnects evict the named series (overflow persists)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                remaining = [key for key in server._m_sub_queue._children
                             if key != ("overflow",)]
                if not remaining:
                    break
                time.sleep(0.02)
            assert not remaining
            assert ("overflow",) in server._m_sub_queue
            feeder.close()

    def test_churn_does_not_grow_families(self):
        session = ServerMonitor(32, 2)
        with BackgroundServer(session, max_peer_labels=2) as background:
            server = background.server
            feeder = ServeClient(port=background.port)
            query = feeder.register("closest", 2)
            for round_number in range(6):
                subscriber = ServeClient(port=background.port)
                subscriber.subscribe(query)
                # each round contributes a strictly closer pair, far from
                # everything before, so the top-k answer always changes
                # and a delta is guaranteed to fan out
                base = 100.0 * (round_number + 1)
                spread = 1.0 / (2.0 ** round_number)
                feeder.ingest([[base, 0.0], [base + spread, 0.0]])
                assert subscriber.next_event(timeout=5.0) is not None
                assert len(server._m_sub_queue) <= 3
                subscriber.close()
            feeder.close()


# ----------------------------------------------------------------------
# satellite: client deadline survives stalls and trickles
# ----------------------------------------------------------------------
def _stub_server(handler):
    """A one-connection raw TCP stub; returns its port."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def run():
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        try:
            handler(conn)
        except OSError:
            pass
        finally:
            conn.close()
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return port


HELLO = (json.dumps({"event": "hello", "protocol": 1,
                     "multi_tenant": False}) + "\n").encode()


class TestClientTimeouts:
    def test_stalled_response_raises_serve_timeout(self):
        def handler(conn):
            conn.sendall(HELLO)
            conn.recv(65536)  # swallow the request, never answer
            time.sleep(30.0)

        port = _stub_server(handler)
        with ServeClient(port=port, timeout=0.5) as client:
            start = time.monotonic()
            with pytest.raises(ServeTimeoutError, match="stats"):
                client.stats()
            assert time.monotonic() - start < 5.0

    def test_trickling_bytes_cannot_postpone_the_deadline(self):
        def handler(conn):
            conn.sendall(HELLO)
            conn.recv(65536)
            # Drip one byte per 100ms: every recv succeeds, so a naive
            # per-recv timeout would never fire.
            for byte in b'{"ok": true, "id": 1, "x": "' + b"y" * 600:
                conn.sendall(bytes([byte]))
                time.sleep(0.1)

        port = _stub_server(handler)
        with ServeClient(port=port, timeout=0.5) as client:
            start = time.monotonic()
            with pytest.raises(ServeTimeoutError):
                client.stats()
            assert time.monotonic() - start < 5.0

    def test_connect_timeout_is_separate(self):
        # a listening socket that never accepts still completes the TCP
        # handshake, so stall the hello instead: connect succeeds, the
        # hello read must hit the connect deadline.
        def handler(conn):
            time.sleep(30.0)

        port = _stub_server(handler)
        start = time.monotonic()
        with pytest.raises(ServeTimeoutError, match="hello"):
            ServeClient(port=port, timeout=60.0, connect_timeout=0.5)
        assert time.monotonic() - start < 5.0

    def test_normal_requests_still_work(self):
        session = ServerMonitor(16, 2)
        with BackgroundServer(session) as background:
            with ServeClient(port=background.port, timeout=5.0,
                             connect_timeout=5.0) as client:
                client.ingest([[0.1, 0.2]])
                assert client.epoch()["now_seq"] == 1
