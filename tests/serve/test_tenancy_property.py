"""Property: a multi-tenant server == N independent servers.

Hypothesis drives an interleaved program of ingest batches and query
registrations across several namespaces, executed two ways:

* over the wire against one multi-tenant :class:`ServeServer` whose
  per-namespace sessions run with ``audit=True``, and
* directly against one independent audited :class:`ServerMonitor` per
  namespace, replaying only that namespace's slice of the program.

Afterwards every namespace's ``checkpoint_state`` must be byte-identical
between the two worlds (minus the ``created_at`` wall-clock stamp):
tenants can neither observe nor perturb each other.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.serve.checkpoint import checkpoint_state  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.server import BackgroundServer  # noqa: E402
from repro.serve.session import ServerMonitor  # noqa: E402
from repro.serve.tenancy import (  # noqa: E402
    NamespaceRegistry,
    TenantSpec,
)

NAMES = ["alpha", "beta", "gamma"]
TOKENS = {name: f"{name}-secret-token" for name in NAMES}
WINDOW = 8
COLUMNS = 2

row_strategy = st.lists(
    st.integers(min_value=0, max_value=99).map(lambda v: v / 4.0),
    min_size=COLUMNS, max_size=COLUMNS,
)

step_strategy = st.one_of(
    st.tuples(
        st.just("ingest"),
        st.sampled_from(NAMES),
        st.lists(row_strategy, min_size=1, max_size=4),
    ),
    st.tuples(
        st.just("register"),
        st.sampled_from(NAMES),
        st.sampled_from(["closest", "furthest"]),
    ),
)

program_strategy = st.lists(step_strategy, min_size=1, max_size=12)


def canonical(session):
    state = checkpoint_state(session)
    state.pop("created_at")
    return json.dumps(state, sort_keys=True)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_multi_tenant_equals_independent_servers(program):
    registry = NamespaceRegistry(
        {name: TenantSpec(name, TOKENS[name]) for name in NAMES},
        lambda name, spec: ServerMonitor(WINDOW, COLUMNS, audit=True),
    )
    with BackgroundServer(None, tenants=registry) as background:
        clients = {}
        try:
            for name in NAMES:
                client = ServeClient(port=background.port)
                client.auth(name, TOKENS[name])
                clients[name] = client
            for step in program:
                if step[0] == "ingest":
                    _, name, rows = step
                    clients[name].ingest(rows)
                else:
                    _, name, scoring = step
                    clients[name].register(scoring, 2)
            served = {
                name: canonical(registry.get(name).session)
                for name in NAMES
            }
        finally:
            for client in clients.values():
                client.close()

    # replay each namespace's slice against its own audited server
    for name in NAMES:
        independent = ServerMonitor(WINDOW, COLUMNS, audit=True)
        independent.namespace = name
        for step in program:
            if step[1] != name:
                continue
            if step[0] == "ingest":
                independent.ingest(step[2])
            else:
                independent.register(step[2], 2)
        assert canonical(independent) == served[name], (
            f"namespace {name} diverged from an independent server"
        )
