"""End-to-end request tracing and the telemetry sidecar on a live
server.

The acceptance property pinned here: a trace id minted at the client
appears on (1) the server's ``op:ingest`` span, (2) the engine ``tick``
span, and (3) every delta event the batch produced and delivered to a
subscriber — one id, the whole story.  Plus the sidecar surfaces
(``/metrics``, ``/healthz``, ``/varz``, ``/tracez``, ``/ticks``)
answering next to a real :class:`BackgroundServer`, and the
``repro obs tail`` CLI attached to it.
"""

from __future__ import annotations

import io
import json
import random
import time
import urllib.request

import pytest

from repro.cli import run_obs_tail
from repro.obs import FlightRecorder, SpanRecorder, new_trace_id
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.server import BackgroundServer
from repro.serve.session import ServerMonitor


def rows(n, seed=0):
    rng = random.Random(seed)
    return [[rng.random(), rng.random()] for _ in range(n)]


@pytest.fixture()
def traced(tmp_path):
    """(background, client, spans, flight) with the sidecar running.

    Flight dumps land in ``tmp_path`` — pytest retains the last few tmp
    dirs, which is what CI harvests as a post-mortem artifact when the
    serve tests fail.
    """
    spans = SpanRecorder(capacity=256)
    flight = FlightRecorder(dump_dir=str(tmp_path),
                            min_dump_interval=3600.0)
    spans.sink = flight.record_span
    session = ServerMonitor(48, 2, spans=spans)
    with BackgroundServer(session, flight=flight, obs_port=0) as background:
        with ServeClient(port=background.port) as client:
            yield background, client, spans, flight


def get(background, target):
    url = f"http://127.0.0.1:{background.obs_port}{target}"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.status, response.headers, response.read()


def story_of(spans, trace, count, timeout=5.0):
    """Poll for ``count`` spans of one trace.

    The op span finishes *after* the response frame is written (the
    handler's ``finally``), so right after an ack the ring may hold only
    the tick span — a bounded wait, not a bug.
    """
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        story = spans.for_trace(trace)
        if len(story) >= count:
            return story
        time.sleep(0.01)
    return spans.for_trace(trace)


class TestTracePropagation:
    def test_trace_spans_op_tick_and_deltas(self, traced):
        background, client, spans, _flight = traced
        query = client.register("closest", k=2)
        client.subscribe(query)
        trace = new_trace_id()

        ack = client.ingest(rows(3), trace=trace)
        assert ack["trace"] == trace  # echoed in the ack

        # Both server-side spans carry the id.
        story = story_of(spans, trace, 2)
        names = [span["name"] for span in story]
        assert names == ["tick", "op:ingest"] or names == [
            "op:ingest", "tick"
        ]
        tick_span = next(s for s in story if s["name"] == "tick")
        assert tick_span["attrs"]["rows"] == 3
        op_span = next(s for s in story if s["name"] == "op:ingest")
        assert op_span["attrs"]["op"] == "ingest"

        # Every delta the batch produced carries the same id.
        assert ack["deltas"] >= 1
        for _ in range(ack["deltas"]):
            event = client.next_event(timeout=10.0)
            assert event["event"] == "delta"
            assert event["trace"] == trace

    def test_untraced_ingest_stays_untraced(self, traced):
        _background, client, spans, _flight = traced
        query = client.register("closest", k=2)
        client.subscribe(query)
        ack = client.ingest(rows(3))
        assert "trace" not in ack
        assert len(spans) == 0  # no trace id, no spans recorded
        for _ in range(ack["deltas"]):
            event = client.next_event(timeout=10.0)
            assert "trace" not in event

    def test_traces_are_isolated(self, traced):
        _background, client, spans, _flight = traced
        first, second = new_trace_id(), new_trace_id()
        client.ingest(rows(2, seed=1), trace=first)
        client.ingest(rows(2, seed=2), trace=second)
        assert {s["trace"] for s in story_of(spans, first, 2)} == {first}
        assert {s["trace"] for s in story_of(spans, second, 2)} == {second}

    def test_bad_trace_rejected(self, traced):
        _background, client, _spans, _flight = traced
        with pytest.raises(ServeRequestError) as excinfo:
            client.request("ingest", rows=[[0.1, 0.2]], trace="x" * 65)
        assert excinfo.value.code == "bad_request"
        with pytest.raises(ServeRequestError):
            client.request("ingest", rows=[[0.1, 0.2]], trace=7)

    def test_failed_op_span_records_error(self, traced):
        _background, client, spans, flight = traced
        trace = new_trace_id()
        with pytest.raises(ServeRequestError):
            client.request("register", scoring="no_such_scoring", k=2,
                           trace=trace)
        (span,) = story_of(spans, trace, 1)
        assert span["name"] == "op:register"
        assert span["attrs"]["error"] == "bad_request"
        # The structured error also landed in the flight ring.
        errors = [r for r in flight.ring.snapshot()
                  if r["kind"] == "error"]
        assert errors and errors[-1]["code"] == "bad_request"


class TestSidecarOnLiveServer:
    def test_all_endpoints_respond(self, traced):
        background, client, spans, _flight = traced
        query = client.register("closest", k=2)
        client.subscribe(query)
        trace = new_trace_id()
        client.ingest(rows(3), trace=trace)
        story_of(spans, trace, 2)  # let the op span land

        status, headers, body = get(background, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert 'repro_serve_op_seconds_count{op="ingest"} 1' in text
        assert "repro_serve_subscriber_queue_depth{" in text

        status, _h, body = get(background, "/healthz")
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok"
        assert health["window_size"] == 3
        assert health["subscribers"] == 1
        assert health["last_tick_age_seconds"] >= 0.0

        status, _h, body = get(background, "/varz")
        varz = json.loads(body)
        assert status == 200
        assert varz["metrics"]["repro_serve_active_connections"] == 1

        status, _h, body = get(background, f"/tracez?trace={trace}")
        story = json.loads(body)
        assert status == 200 and story["enabled"] is True
        assert {s["name"] for s in story["spans"]} == {
            "op:ingest", "tick"
        }

    def test_ticks_stream_carries_trace(self, traced):
        background, client, _spans, _flight = traced
        trace = new_trace_id()
        client.ingest(rows(2), trace=trace)
        status, _h, body = get(background,
                               "/ticks?backlog=10&limit=1")
        assert status == 200
        record = json.loads(body.splitlines()[0])
        assert record["tick"] == 2
        assert record["rows"] == 2
        assert record["trace"] == trace
        assert record["seconds"] >= 0.0

    def test_stats_reports_sidecar_and_tracing(self, traced):
        background, client, _spans, _flight = traced
        stats = client.stats()
        assert stats["serve"]["obs_port"] == background.obs_port
        assert stats["serve"]["tracing"] is True

    def test_sidecar_stops_with_server(self, traced):
        background, client, _spans, _flight = traced
        obs_port = background.obs_port
        client.shutdown()
        background.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{obs_port}/healthz", timeout=2.0
            )


class TestObsTailCLI:
    def test_tail_pretty_prints_ticks(self, traced):
        background, client, _spans, _flight = traced
        trace = new_trace_id()
        client.ingest(rows(3), trace=trace)
        out = io.StringIO()
        code = run_obs_tail(
            ["--port", str(background.obs_port), "--backlog", "10",
             "--limit", "1"], out,
        )
        assert code == 0
        text = out.getvalue()
        assert "tick 3" in text
        assert "rows=3" in text
        assert f"trace={trace}" in text
        assert "tailed 1 tick(s)" in text

    def test_tail_raw_emits_ndjson(self, traced):
        background, client, _spans, _flight = traced
        client.ingest(rows(2))
        out = io.StringIO()
        code = run_obs_tail(
            ["--port", str(background.obs_port), "--backlog", "10",
             "--limit", "1", "--raw"], out,
        )
        assert code == 0
        record = json.loads(out.getvalue().splitlines()[0])
        assert record["tick"] == 2
