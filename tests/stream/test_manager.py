"""Tests for the stream manager (paper §III-B module 1)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InvalidParameterError
from repro.stream.manager import StreamManager


class TestBasics:
    def test_needs_at_least_one_attribute(self):
        with pytest.raises(InvalidParameterError):
            StreamManager(10, 0)

    def test_append_assigns_increasing_seq(self):
        mgr = StreamManager(10, 1)
        a = mgr.append((1.0,)).new
        b = mgr.append((2.0,)).new
        assert (a.seq, b.seq) == (1, 2)
        assert mgr.now_seq == 2

    def test_append_validates_arity(self):
        mgr = StreamManager(10, 2)
        with pytest.raises(InvalidParameterError):
            mgr.append((1.0,))

    def test_window_iteration_is_age_sorted(self):
        mgr = StreamManager(10, 1)
        for v in range(5):
            mgr.append((float(v),))
        assert [o.seq for o in mgr] == [1, 2, 3, 4, 5]
        assert [o.seq for o in mgr.newest_first()] == [5, 4, 3, 2, 1]

    def test_expiry_reported_and_lists_updated(self):
        mgr = StreamManager(3, 1)
        for v in range(3):
            mgr.append((float(v),))
        event = mgr.append((99.0,))
        assert [o.seq for o in event.expired] == [1]
        assert len(mgr) == 3
        assert len(mgr.attribute_list(0)) == 3

    def test_oldest(self):
        mgr = StreamManager(2, 1)
        assert mgr.oldest() is None
        mgr.append((1.0,))
        mgr.append((2.0,))
        mgr.append((3.0,))
        assert mgr.oldest().seq == 2

    def test_extend(self):
        mgr = StreamManager(10, 2)
        events = mgr.extend([(1.0, 2.0), (3.0, 4.0)])
        assert len(events) == 2
        assert len(mgr) == 2


class TestAttributeLists:
    def test_sorted_per_attribute(self):
        mgr = StreamManager(10, 2)
        mgr.append((3.0, 10.0))
        mgr.append((1.0, 30.0))
        mgr.append((2.0, 20.0))
        assert [o.values[0] for o in mgr.attribute_list(0)] == [1.0, 2.0, 3.0]
        assert [o.values[1] for o in mgr.attribute_list(1)] == [10.0, 20.0, 30.0]

    def test_duplicate_values_ordered_by_seq(self):
        mgr = StreamManager(10, 1)
        mgr.append((5.0,))
        mgr.append((5.0,))
        mgr.append((5.0,))
        assert [o.seq for o in mgr.attribute_list(0)] == [1, 2, 3]

    def test_node_for_points_into_each_list(self):
        mgr = StreamManager(10, 2)
        obj = mgr.append((7.0, 8.0)).new
        for attribute in range(2):
            node = mgr.node_for(obj, attribute)
            assert node.value is obj

    def test_expired_objects_leave_all_lists(self):
        mgr = StreamManager(2, 3)
        rng = random.Random(0)
        for _ in range(30):
            mgr.append(tuple(rng.random() for _ in range(3)))
        for attribute in range(3):
            lst = mgr.attribute_list(attribute)
            assert len(lst) == 2
            lst.check_invariants()

    def test_storage_is_window_times_attributes(self):
        """Theorem 4: O(ND) storage — one entry per object per list."""
        mgr = StreamManager(5, 4)
        for v in range(20):
            mgr.append((float(v),) * 4)
        assert len(mgr) == 5
        total_entries = sum(
            len(mgr.attribute_list(i)) for i in range(4)
        )
        assert total_entries == 5 * 4


class TestTimeHorizon:
    def test_time_based_expiry(self):
        mgr = StreamManager(100, 1, time_horizon=10.0)
        mgr.append((1.0,), timestamp=0.0)
        mgr.append((2.0,), timestamp=5.0)
        event = mgr.append((3.0,), timestamp=20.0)
        assert [o.seq for o in event.expired] == [1, 2]
        assert len(mgr) == 1
        assert len(mgr.attribute_list(0)) == 1


class TestSeedSequence:
    def test_fresh_manager_seeds_next_seq(self):
        mgr = StreamManager(10, 1)
        mgr.seed_sequence(500)
        event = mgr.append((1.0,))
        assert event.new.seq == 500
        assert mgr.append((2.0,)).new.seq == 501

    def test_rejected_after_first_append(self):
        mgr = StreamManager(10, 1)
        mgr.append((1.0,))
        with pytest.raises(InvalidParameterError):
            mgr.seed_sequence(500)

    def test_rejected_after_a_prior_seed_plus_append(self):
        mgr = StreamManager(10, 1)
        mgr.seed_sequence(7)
        mgr.append((1.0,))
        with pytest.raises(InvalidParameterError):
            mgr.seed_sequence(9)

    def test_rejects_nonpositive_seq(self):
        mgr = StreamManager(10, 1)
        with pytest.raises(InvalidParameterError):
            mgr.seed_sequence(0)
