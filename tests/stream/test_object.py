"""Tests for StreamObject."""

from __future__ import annotations

import pytest

from repro.stream.object import StreamObject


class TestStreamObject:
    def test_values_are_tuple(self):
        obj = StreamObject(1, [1.0, 2.0])
        assert obj.values == (1.0, 2.0)
        assert isinstance(obj.values, tuple)

    def test_age_definition(self):
        """Paper §II-B: the i-th most recent object has age i."""
        obj = StreamObject(5, (0.0,))
        assert obj.age(now_seq=5) == 1
        assert obj.age(now_seq=9) == 5

    def test_getitem_reads_attribute(self):
        obj = StreamObject(1, (10.0, 20.0, 30.0))
        assert obj[0] == 10.0
        assert obj[2] == 30.0
        with pytest.raises(IndexError):
            obj[3]

    def test_len_is_attribute_count(self):
        assert len(StreamObject(1, (1.0, 2.0, 3.0))) == 3

    def test_equality_by_seq(self):
        assert StreamObject(3, (1.0,)) == StreamObject(3, (2.0,))
        assert StreamObject(3, (1.0,)) != StreamObject(4, (1.0,))

    def test_hash_consistent_with_eq(self):
        a, b = StreamObject(3, (1.0,)), StreamObject(3, (9.0,))
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_payload_and_timestamp(self):
        obj = StreamObject(1, (0.0,), timestamp=12.5, payload="AAPL")
        assert obj.timestamp == 12.5
        assert obj.payload == "AAPL"

    def test_defaults(self):
        obj = StreamObject(1, (0.0,))
        assert obj.timestamp is None
        assert obj.payload is None

    def test_repr_mentions_payload_when_set(self):
        assert "AAPL" in repr(StreamObject(1, (0.0,), payload="AAPL"))
        assert "payload" not in repr(StreamObject(1, (0.0,)))
