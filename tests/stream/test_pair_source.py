"""Tests for incremental sorted-pair retrieval (paper Fig 6)."""

from __future__ import annotations

import random

import pytest

from repro.scoring.local import (
    AbsoluteDifference,
    NegatedAbsoluteDifference,
    NegatedSumValues,
    SumValues,
)
from repro.stream.manager import StreamManager
from repro.stream.pair_source import iter_pairs_by_age, iter_pairs_by_local_score


def manager_with(values):
    mgr = StreamManager(len(values) + 1, 1)
    for v in values:
        mgr.append((v,))
    return mgr


LOCALS = [
    AbsoluteDifference(),
    NegatedAbsoluteDifference(),
    SumValues(),
    NegatedSumValues(),
]


@pytest.mark.parametrize("local_fn", LOCALS, ids=lambda f: f.name)
class TestLocalScoreOrder:
    def test_scores_ascending_and_complete(self, local_fn):
        mgr = manager_with([3.0, 8.0, 1.0, 6.0, 4.0])
        new = mgr.append((5.0,)).new
        out = list(iter_pairs_by_local_score(mgr, new, 0, local_fn))
        scores = [s for _, s in out]
        assert scores == sorted(scores)
        assert len(out) == 5  # every partner exactly once
        assert len({p.seq for p, _ in out}) == 5
        assert all(p.seq != new.seq for p, _ in out)

    def test_scores_match_direct_evaluation(self, local_fn):
        mgr = manager_with([2.0, 9.0, 7.0])
        new = mgr.append((4.0,)).new
        for partner, score in iter_pairs_by_local_score(mgr, new, 0, local_fn):
            assert score == local_fn.score(4.0, partner.values[0])

    def test_random_streams(self, local_fn):
        rng = random.Random(99)
        for trial in range(10):
            values = [rng.uniform(-5, 5) for _ in range(rng.randint(1, 25))]
            mgr = manager_with(values)
            new = mgr.append((rng.uniform(-5, 5),)).new
            out = list(iter_pairs_by_local_score(mgr, new, 0, local_fn))
            scores = [s for _, s in out]
            assert scores == sorted(scores)
            assert len(out) == len(values)


class TestEdgeCases:
    def test_new_object_alone_yields_nothing(self):
        mgr = StreamManager(5, 1)
        new = mgr.append((1.0,)).new
        assert list(iter_pairs_by_local_score(mgr, new, 0, AbsoluteDifference())) == []
        assert list(iter_pairs_by_age(mgr, new)) == []

    def test_duplicate_values(self):
        mgr = manager_with([5.0, 5.0, 5.0])
        new = mgr.append((5.0,)).new
        out = list(iter_pairs_by_local_score(mgr, new, 0, AbsoluteDifference()))
        assert [s for _, s in out] == [0.0, 0.0, 0.0]

    def test_new_object_at_extreme(self):
        mgr = manager_with([1.0, 2.0, 3.0])
        new = mgr.append((100.0,)).new
        out = list(
            iter_pairs_by_local_score(mgr, new, 0, NegatedAbsoluteDifference())
        )
        # Furthest-first: the smallest value is the best partner.
        assert out[0][0].values[0] == 1.0
        assert [s for _, s in out] == sorted(s for _, s in out)


class TestAgeOrder:
    def test_newest_partners_first(self):
        mgr = manager_with([1.0, 2.0, 3.0])
        new = mgr.append((4.0,)).new
        partners = list(iter_pairs_by_age(mgr, new))
        assert [p.seq for p in partners] == [3, 2, 1]

    def test_pair_ages_ascending(self):
        mgr = manager_with([1.0, 2.0, 3.0])
        new = mgr.append((4.0,)).new
        now = mgr.now_seq
        ages = [
            max(p.age(now), new.age(now)) for p in iter_pairs_by_age(mgr, new)
        ]
        assert ages == sorted(ages)
