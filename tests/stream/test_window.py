"""Tests for count- and time-based sliding windows."""

from __future__ import annotations

import pytest

from repro.exceptions import WindowError
from repro.stream.object import StreamObject
from repro.stream.window import CountBasedWindow, TimeBasedWindow


def obj(seq, t=None):
    return StreamObject(seq, (float(seq),), timestamp=t)


class TestCountBasedWindow:
    def test_capacity_validation(self):
        with pytest.raises(WindowError):
            CountBasedWindow(0)

    def test_push_under_capacity_expires_nothing(self):
        w = CountBasedWindow(3)
        assert w.push(obj(1)) == []
        assert w.push(obj(2)) == []
        assert len(w) == 2

    def test_push_over_capacity_expires_oldest(self):
        w = CountBasedWindow(2)
        w.push(obj(1))
        w.push(obj(2))
        expired = w.push(obj(3))
        assert [o.seq for o in expired] == [1]
        assert [o.seq for o in w] == [2, 3]

    def test_iteration_oldest_first(self):
        w = CountBasedWindow(5)
        for s in range(1, 4):
            w.push(obj(s))
        assert [o.seq for o in w] == [1, 2, 3]
        assert [o.seq for o in w.newest_first()] == [3, 2, 1]

    def test_oldest_newest(self):
        w = CountBasedWindow(5)
        assert w.oldest() is None
        assert w.newest() is None
        w.push(obj(1))
        w.push(obj(2))
        assert w.oldest().seq == 1
        assert w.newest().seq == 2

    def test_contains(self):
        w = CountBasedWindow(2)
        w.push(obj(1))
        w.push(obj(2))
        w.push(obj(3))
        assert obj(2) in w
        assert obj(1) not in w


class TestTimeBasedWindow:
    def test_horizon_validation(self):
        with pytest.raises(WindowError):
            TimeBasedWindow(0)

    def test_requires_timestamps(self):
        w = TimeBasedWindow(10.0)
        with pytest.raises(WindowError):
            w.push(obj(1, t=None))

    def test_rejects_decreasing_timestamps(self):
        w = TimeBasedWindow(10.0)
        w.push(obj(1, t=5.0))
        with pytest.raises(WindowError):
            w.push(obj(2, t=4.0))

    def test_expiry_by_horizon(self):
        w = TimeBasedWindow(10.0)
        w.push(obj(1, t=0.0))
        w.push(obj(2, t=5.0))
        expired = w.push(obj(3, t=12.0))
        assert [o.seq for o in expired] == [1]
        assert [o.seq for o in w] == [2, 3]

    def test_multiple_expiries_in_one_push(self):
        w = TimeBasedWindow(5.0)
        for seq, t in [(1, 0.0), (2, 1.0), (3, 2.0)]:
            w.push(obj(seq, t=t))
        expired = w.push(obj(4, t=50.0))
        assert [o.seq for o in expired] == [1, 2, 3]
        assert len(w) == 1

    def test_boundary_is_inclusive(self):
        """An object exactly ``horizon`` old stays in the window."""
        w = TimeBasedWindow(10.0)
        w.push(obj(1, t=0.0))
        expired = w.push(obj(2, t=10.0))
        assert expired == []
        assert len(w) == 2

    def test_equal_timestamps_allowed(self):
        w = TimeBasedWindow(10.0)
        w.push(obj(1, t=3.0))
        w.push(obj(2, t=3.0))
        assert len(w) == 2
