"""Unit and property tests for the binary heaps."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyStructureError
from repro.structures.heap import Heap, MaxHeap, MinHeap


class TestMinHeap:
    def test_push_pop_sorted(self):
        heap = MinHeap()
        for v in [5, 1, 4, 2, 3]:
            heap.push(v)
        assert [heap.pop() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_peek_does_not_remove(self):
        heap = MinHeap([3, 1, 2])
        assert heap.peek() == 1
        assert len(heap) == 3

    def test_heapify_constructor(self):
        heap = MinHeap([9, 7, 8, 1])
        heap.check_invariants()
        assert heap.peek() == 1


class TestMaxHeap:
    def test_pop_descending(self):
        heap = MaxHeap([2, 9, 4])
        assert [heap.pop() for _ in range(3)] == [9, 4, 2]

    def test_algorithm4_usage_pattern(self):
        """Track the K smallest ages: max-heap of size K, top = K-th
        smallest — exactly how Algorithm 4 uses it."""
        K = 3
        heap = MaxHeap()
        ages = [50, 10, 40, 20, 30, 5, 60]
        kth_smallest_after = []
        for age in ages:
            if len(heap) < K:
                heap.push(age)
            elif age < heap.peek():
                heap.replace_top(age)
            if len(heap) == K:
                kth_smallest_after.append(heap.peek())
        assert kth_smallest_after == [50, 40, 30, 20, 20]


class TestKeyed:
    def test_key_extracts_comparison(self):
        heap = MinHeap(key=lambda item: item[1])
        heap.push(("a", 3))
        heap.push(("b", 1))
        heap.push(("c", 2))
        assert heap.pop() == ("b", 1)
        assert heap.pop() == ("c", 2)

    def test_max_heap_with_key(self):
        heap = MaxHeap([("x", 1), ("y", 9)], key=lambda item: item[1])
        assert heap.peek() == ("y", 9)


class TestOperations:
    def test_pop_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            MinHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            MinHeap().peek()

    def test_replace_top_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            MinHeap().replace_top(1)

    def test_pushpop_on_empty_returns_item(self):
        heap = MinHeap()
        assert heap.pushpop(5) == 5
        assert len(heap) == 0

    def test_pushpop_smaller_than_min(self):
        heap = MinHeap([3, 4])
        assert heap.pushpop(1) == 1
        assert sorted(heap) == [3, 4]

    def test_pushpop_larger_than_min(self):
        heap = MinHeap([3, 4])
        assert heap.pushpop(9) == 3
        assert sorted(heap) == [4, 9]

    def test_pushpop_maxheap(self):
        heap = MaxHeap([3, 4])
        assert heap.pushpop(9) == 9
        assert heap.pushpop(1) == 4
        assert sorted(heap) == [1, 3]

    def test_replace_top(self):
        heap = MinHeap([2, 5, 7])
        assert heap.replace_top(6) == 2
        assert heap.pop() == 5

    def test_clear(self):
        heap = MinHeap([1, 2])
        heap.clear()
        assert len(heap) == 0

    def test_iteration_yields_all(self):
        heap = MinHeap([4, 2, 6])
        assert sorted(heap) == [2, 4, 6]

    def test_generic_heap_direction_flag(self):
        assert Heap([1, 2], max_heap=True).peek() == 2
        assert Heap([1, 2], max_heap=False).peek() == 1


class TestRandomized:
    def test_heapsort_matches_sorted(self):
        rng = random.Random(13)
        values = [rng.randint(-1000, 1000) for _ in range(500)]
        heap = MinHeap(values)
        heap.check_invariants()
        assert [heap.pop() for _ in range(len(values))] == sorted(values)

    def test_interleaved_ops_keep_invariant(self):
        rng = random.Random(77)
        heap = MaxHeap()
        for _ in range(1000):
            if rng.random() < 0.7 or not heap:
                heap.push(rng.randint(0, 100))
            else:
                heap.pop()
            heap.check_invariants()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers()))
def test_property_min_heap_pops_sorted(values):
    heap = MinHeap(values)
    out = [heap.pop() for _ in range(len(values))]
    assert out == sorted(values)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(), min_size=1), st.integers())
def test_property_pushpop_equals_push_then_pop(values, extra):
    a = MinHeap(values)
    b = MinHeap(values)
    result_a = a.pushpop(extra)
    b.push(extra)
    result_b = b.pop()
    assert result_a == result_b
    assert sorted(a) == sorted(b)
