"""Tests for the priority search tree (paper Algorithms 1 and 2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pair import window_age_key_bound
from repro.exceptions import ItemNotFoundError
from repro.structures.pst import PrioritySearchTree

from tests.conftest import make_pair_at

NOW = 100


def build_pairs(age_scores):
    return [make_pair_at(age_score, now_seq=NOW) for age_score in age_scores]


def brute_top_k(pairs, k, n):
    in_window = [p for p in pairs if p.age(NOW) <= n]
    return sorted(in_window, key=lambda p: p.score_key)[:k]


def assert_same_pairs(got, want):
    assert [p.uid for p in got] == [p.uid for p in want]


class TestConstruction:
    def test_empty(self):
        pst = PrioritySearchTree()
        assert len(pst) == 0
        assert not pst
        assert pst.top_k(3, 0) == []

    def test_single_point(self):
        pairs = build_pairs([(1, 5.0)])
        pst = PrioritySearchTree(pairs)
        assert len(pst) == 1
        pst.check_invariants()

    def test_root_holds_minimum_age(self):
        pairs = build_pairs([(3, 1.0), (1, 9.0), (2, 5.0)])
        pst = PrioritySearchTree(pairs)
        assert pst.root.point.age(NOW) == 1

    def test_heap_and_split_invariants(self):
        pairs = build_pairs([(i, float((i * 37) % 11)) for i in range(1, 30)])
        pst = PrioritySearchTree(pairs)
        pst.check_invariants()

    def test_balanced_height(self):
        pairs = build_pairs([(i, float(i)) for i in range(1, 129)])
        pst = PrioritySearchTree(pairs)
        # A median-split PST over 128 points has height <= ~2 log2(128).
        assert pst.height() <= 14

    def test_points_iteration_complete(self):
        pairs = build_pairs([(i, float(i % 7)) for i in range(1, 20)])
        pst = PrioritySearchTree(pairs)
        assert {p.uid for p in pst.points()} == {p.uid for p in pairs}


class TestAlgorithm2:
    """The modified post-order top-k traversal."""

    @pytest.fixture
    def example(self):
        """A 2-skyband-like configuration in the spirit of paper Fig 3/4:
        eight pairs, age of pair i is i."""
        return build_pairs(
            [(1, 6.0), (2, 5.0), (3, 5.5), (4, 5.2),
             (5, 4.0), (6, 3.0), (7, 1.0), (8, 2.0)]
        )

    def test_all_k_n_combinations(self, example):
        pst = PrioritySearchTree(example)
        for k in range(1, 10):
            for n in range(1, 10):
                got = pst.top_k(k, window_age_key_bound(NOW, n))
                assert_same_pairs(got, brute_top_k(example, k, n))

    def test_out_of_window_subtree_skipped(self, example):
        """With n = 7 the age-8 pair must never appear (paper Example 1)."""
        pst = PrioritySearchTree(example)
        got = pst.top_k(8, window_age_key_bound(NOW, 7))
        assert all(p.age(NOW) <= 7 for p in got)
        assert len(got) == 7

    def test_k_larger_than_size(self, example):
        pst = PrioritySearchTree(example)
        got = pst.top_k(50, window_age_key_bound(NOW, 100))
        assert len(got) == 8

    def test_window_excludes_everything(self, example):
        pst = PrioritySearchTree(example)
        assert pst.top_k(3, window_age_key_bound(NOW, 0)) == []

    def test_result_sorted_by_score(self, example):
        pst = PrioritySearchTree(example)
        got = pst.top_k(5, window_age_key_bound(NOW, 8))
        keys = [p.score_key for p in got]
        assert keys == sorted(keys)

    def test_k_zero(self, example):
        pst = PrioritySearchTree(example)
        assert pst.top_k(0, window_age_key_bound(NOW, 8)) == []

    def test_random_configurations(self):
        rng = random.Random(3)
        for trial in range(25):
            size = rng.randint(1, 60)
            pairs = build_pairs(
                [(i, rng.uniform(0, 10)) for i in range(1, size + 1)]
            )
            pst = PrioritySearchTree(pairs)
            pst.check_invariants()
            for _ in range(10):
                k = rng.randint(1, size + 2)
                n = rng.randint(1, size + 2)
                got = pst.top_k(k, window_age_key_bound(NOW, n))
                assert_same_pairs(got, brute_top_k(pairs, k, n))

    def test_duplicate_ages(self):
        """Several pairs may share one age (pairs of one old object)."""
        pairs = build_pairs([(5, 1.0), (5, 2.0), (5, 3.0), (2, 9.0)])
        pst = PrioritySearchTree(pairs)
        pst.check_invariants()
        got = pst.top_k(2, window_age_key_bound(NOW, 5))
        assert_same_pairs(got, brute_top_k(pairs, 2, 5))

    def test_duplicate_scores_distinguished_by_key(self):
        pairs = build_pairs([(1, 4.0), (2, 4.0), (3, 4.0)])
        pst = PrioritySearchTree(pairs)
        got = pst.top_k(3, window_age_key_bound(NOW, 3))
        assert len(got) == 3
        assert len({p.uid for p in got}) == 3


class TestDynamicOperations:
    def test_insert_into_empty(self):
        pst = PrioritySearchTree()
        pair = make_pair_at((1, 5.0), now_seq=NOW)
        pst.insert(pair)
        assert len(pst) == 1
        pst.check_invariants()

    def test_incremental_inserts_match_bulk_build(self):
        rng = random.Random(17)
        pairs = build_pairs([(i, rng.uniform(0, 5)) for i in range(1, 40)])
        pst = PrioritySearchTree()
        for pair in pairs:
            pst.insert(pair)
            pst.check_invariants()
        for k in (1, 3, 10):
            for n in (5, 20, 40):
                got = pst.top_k(k, window_age_key_bound(NOW, n))
                assert_same_pairs(got, brute_top_k(pairs, k, n))

    def test_delete_leaf(self):
        pairs = build_pairs([(1, 1.0), (2, 2.0), (3, 3.0)])
        pst = PrioritySearchTree(pairs)
        pst.delete(pairs[2])
        assert len(pst) == 2
        pst.check_invariants()

    def test_delete_root(self):
        pairs = build_pairs([(1, 5.0), (2, 2.0), (3, 8.0)])
        pst = PrioritySearchTree(pairs)
        root_pair = pst.root.point
        pst.delete(root_pair)
        assert len(pst) == 2
        pst.check_invariants()
        assert root_pair.uid not in {p.uid for p in pst.points()}

    def test_delete_missing_raises(self):
        pairs = build_pairs([(1, 1.0)])
        pst = PrioritySearchTree(pairs)
        ghost = make_pair_at((2, 9.0), now_seq=NOW)
        with pytest.raises(ItemNotFoundError):
            pst.delete(ghost)

    def test_delete_everything(self):
        pairs = build_pairs([(i, float(i * 3 % 7)) for i in range(1, 25)])
        pst = PrioritySearchTree(pairs)
        for pair in pairs:
            pst.delete(pair)
            pst.check_invariants()
        assert len(pst) == 0

    def test_mixed_workload_matches_brute(self):
        rng = random.Random(23)
        pst = PrioritySearchTree()
        alive: list = []
        next_age = 1
        for step in range(400):
            if rng.random() < 0.65 or not alive:
                pair = make_pair_at(
                    (rng.randint(1, 50), rng.uniform(0, 10)), now_seq=NOW
                )
                next_age += 1
                pst.insert(pair)
                alive.append(pair)
            else:
                pair = alive.pop(rng.randrange(len(alive)))
                pst.delete(pair)
            if step % 25 == 0:
                pst.check_invariants()
                k = rng.randint(1, 10)
                n = rng.randint(1, 60)
                got = pst.top_k(k, window_age_key_bound(NOW, n))
                assert_same_pairs(got, brute_top_k(alive, k, n))
        pst.check_invariants()

    def test_rebuild_preserves_contents(self):
        pairs = build_pairs([(i, float(i % 5)) for i in range(1, 30)])
        pst = PrioritySearchTree(pairs)
        pst.rebuild()
        pst.check_invariants()
        assert {p.uid for p in pst.points()} == {p.uid for p in pairs}

    def test_find(self):
        pairs = build_pairs([(1, 3.0), (2, 1.0)])
        pst = PrioritySearchTree(pairs)
        assert pst.find(pairs[0].score_key).uid == pairs[0].uid
        assert pst.find((99.0, 0, 0)) is None

    def test_min_score_point(self):
        rng = random.Random(31)
        pairs = build_pairs([(i, rng.uniform(0, 9)) for i in range(1, 35)])
        pst = PrioritySearchTree(pairs)
        want = min(pairs, key=lambda p: p.score_key)
        assert pst.min_score_point().uid == want.uid

    def test_min_score_point_after_mutations(self):
        rng = random.Random(37)
        pst = PrioritySearchTree()
        alive = []
        for i in range(60):
            pair = make_pair_at((rng.randint(1, 20), rng.uniform(0, 9)),
                                now_seq=NOW)
            pst.insert(pair)
            alive.append(pair)
            if rng.random() < 0.3:
                gone = alive.pop(rng.randrange(len(alive)))
                pst.delete(gone)
            want = min(alive, key=lambda p: p.score_key)
            assert pst.min_score_point().uid == want.uid


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 30), st.floats(0, 100)),
        min_size=1,
        max_size=40,
    ),
    st.integers(1, 12),
    st.integers(1, 35),
)
def test_property_topk_matches_brute(age_scores, k, n):
    pairs = build_pairs(age_scores)
    pst = PrioritySearchTree(pairs)
    pst.check_invariants()
    got = pst.top_k(k, window_age_key_bound(NOW, n))
    assert_same_pairs(got, brute_top_k(pairs, k, n))
