"""Tests for linear-time selection (median of medians / quickselect)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.structures.selection import (
    median_of_medians,
    quickselect_smallest,
    select_smallest,
)


@pytest.mark.parametrize("select", [select_smallest, quickselect_smallest])
class TestSelect:
    def test_basic(self, select):
        assert select([5, 1, 4, 2, 3], 2) == [1, 2]

    def test_k_zero(self, select):
        assert select([1, 2, 3], 0) == []

    def test_k_negative(self, select):
        assert select([1, 2, 3], -2) == []

    def test_k_equals_length(self, select):
        assert select([3, 1, 2], 3) == [1, 2, 3]

    def test_k_exceeds_length(self, select):
        assert select([3, 1], 10) == [1, 3]

    def test_empty_input(self, select):
        assert select([], 5) == []

    def test_result_sorted(self, select):
        rng = random.Random(5)
        data = [rng.random() for _ in range(200)]
        result = select(data, 20)
        assert result == sorted(result)
        assert result == sorted(data)[:20]

    def test_with_key(self, select):
        data = [("a", 3), ("b", 1), ("c", 2)]
        assert select(data, 2, key=lambda t: t[1]) == [("b", 1), ("c", 2)]

    def test_duplicates(self, select):
        data = [5, 5, 5, 1, 1, 3]
        assert select(data, 4) == [1, 1, 3, 5]

    def test_all_equal(self, select):
        assert select([7] * 20, 5) == [7] * 5

    def test_input_not_mutated(self, select):
        data = [9, 2, 7, 4]
        copy = list(data)
        select(data, 2)
        assert data == copy

    def test_adversarial_sorted_input(self, select):
        data = list(range(1000))
        assert select(data, 10) == list(range(10))

    def test_adversarial_reverse_sorted(self, select):
        data = list(range(1000, 0, -1))
        assert select(data, 10) == list(range(1, 11))


class TestMedianOfMedians:
    def test_single(self):
        assert median_of_medians([42]) == 42

    def test_small(self):
        assert median_of_medians([3, 1, 2]) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_of_medians([])

    def test_pivot_is_within_30_70_percentile(self):
        rng = random.Random(11)
        for trial in range(20):
            data = [rng.random() for _ in range(201)]
            pivot = median_of_medians(data)
            rank = sorted(data).index(pivot)
            assert 0.2 * len(data) <= rank <= 0.8 * len(data)

    def test_with_key(self):
        data = [("x", v) for v in range(25)]
        pivot = median_of_medians(data, key=lambda t: t[1])
        assert 5 <= pivot[1] <= 19


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(-1000, 1000)), st.integers(0, 50))
def test_property_select_matches_sorted_prefix(values, k):
    assert select_smallest(values, k) == sorted(values)[:k]
    assert quickselect_smallest(values, k) == sorted(values)[:k]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1))
def test_property_floats_supported(values):
    k = len(values) // 2
    assert quickselect_smallest(values, k) == sorted(values)[:k]
