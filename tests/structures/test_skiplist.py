"""Unit and property tests for the indexable skip list."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyStructureError, ItemNotFoundError
from repro.structures.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert not sl
        assert list(sl) == []

    def test_insert_sorted_iteration(self):
        sl = SkipList([5, 1, 4, 2, 3])
        assert list(sl) == [1, 2, 3, 4, 5]

    def test_len_and_bool(self):
        sl = SkipList([2, 1])
        assert len(sl) == 2
        assert sl

    def test_contains(self):
        sl = SkipList([10, 20, 30])
        assert 20 in sl
        assert 25 not in sl

    def test_duplicates_allowed(self):
        sl = SkipList([3, 3, 3, 1])
        assert list(sl) == [1, 3, 3, 3]
        assert len(sl) == 4

    def test_getitem_by_rank(self):
        sl = SkipList([50, 10, 40, 20, 30])
        assert sl[0] == 10
        assert sl[2] == 30
        assert sl[4] == 50
        assert sl[-1] == 50
        assert sl[-5] == 10

    def test_getitem_out_of_range(self):
        sl = SkipList([1])
        with pytest.raises(IndexError):
            sl.node_at(1)
        with pytest.raises(IndexError):
            sl.node_at(-2)

    def test_first_last(self):
        sl = SkipList([7, 3, 9])
        assert sl.first() == 3
        assert sl.last() == 9

    def test_first_last_empty_raises(self):
        sl = SkipList()
        with pytest.raises(EmptyStructureError):
            sl.first()
        with pytest.raises(EmptyStructureError):
            sl.last()

    def test_clear(self):
        sl = SkipList([1, 2, 3])
        sl.clear()
        assert len(sl) == 0
        assert list(sl) == []
        sl.insert(5)
        assert list(sl) == [5]


class TestKeyFunction:
    def test_key_orders_values(self):
        sl = SkipList(["bb", "a", "ccc"], key=len)
        assert list(sl) == ["a", "bb", "ccc"]

    def test_equal_keys_keep_insertion_order(self):
        sl = SkipList(key=lambda pair: pair[0])
        sl.insert((1, "first"))
        sl.insert((1, "second"))
        sl.insert((1, "third"))
        assert [v[1] for v in sl] == ["first", "second", "third"]


class TestRemoval:
    def test_remove_value(self):
        sl = SkipList([1, 2, 3])
        sl.remove(2)
        assert list(sl) == [1, 3]

    def test_remove_missing_raises(self):
        sl = SkipList([1, 2])
        with pytest.raises(ItemNotFoundError):
            sl.remove(9)

    def test_remove_one_of_duplicates(self):
        sl = SkipList(key=lambda pair: pair[0])
        sl.insert((5, "a"))
        sl.insert((5, "b"))
        sl.remove((5, "a"))
        assert list(sl) == [(5, "b")]

    def test_remove_node_returned_by_insert(self):
        sl = SkipList([1, 3])
        node = sl.insert(2)
        sl.remove_node(node)
        assert list(sl) == [1, 3]

    def test_remove_node_among_equal_keys(self):
        sl = SkipList(key=lambda pair: pair[0])
        nodes = [sl.insert((7, tag)) for tag in "abcde"]
        sl.remove_node(nodes[2])
        assert [v[1] for v in sl] == ["a", "b", "d", "e"]
        sl.check_invariants()

    def test_remove_all_then_reuse(self):
        sl = SkipList(range(10))
        for v in range(10):
            sl.remove(v)
        assert len(sl) == 0
        sl.insert(42)
        assert list(sl) == [42]


class TestSearch:
    def test_bisect_left_right(self):
        sl = SkipList([1, 3, 3, 5])
        assert sl.bisect_left(3) == 1
        assert sl.bisect_right(3) == 3
        assert sl.bisect_left(0) == 0
        assert sl.bisect_right(9) == 4

    def test_index(self):
        sl = SkipList([10, 20, 30])
        assert sl.index(20) == 1
        with pytest.raises(ItemNotFoundError):
            sl.index(99)

    def test_find_node(self):
        sl = SkipList([10, 20])
        node = sl.find_node(20)
        assert node.value == 20
        with pytest.raises(ItemNotFoundError):
            sl.find_node(15)

    def test_irange(self):
        sl = SkipList(range(10))
        assert list(sl.irange(3, 6)) == [3, 4, 5]
        assert list(sl.irange(8)) == [8, 9]
        assert list(sl.irange(5, 5)) == []
        assert list(sl.irange(20, 30)) == []


class TestNeighbourPointers:
    """The TA pair iterators rely on prev/next walks from a node."""

    def test_forward_walk(self):
        sl = SkipList([1, 2, 3, 4])
        node = sl.find_node(2)
        seen = []
        cur = node.next_at(0)
        while cur is not None:
            seen.append(cur.value)
            cur = cur.next_at(0)
        assert seen == [3, 4]

    def test_backward_walk(self):
        sl = SkipList([1, 2, 3, 4])
        node = sl.find_node(3)
        seen = []
        cur = node.prev
        while cur is not None:
            seen.append(cur.value)
            cur = cur.prev
        assert seen == [2, 1]

    def test_prev_of_first_is_none(self):
        sl = SkipList([1, 2])
        assert sl.find_node(1).prev is None

    def test_prev_pointers_survive_removal(self):
        sl = SkipList([1, 2, 3, 4, 5])
        sl.remove(3)
        node = sl.find_node(4)
        assert node.prev.value == 2
        sl.check_invariants()


class TestRandomized:
    def test_against_sorted_list_model(self):
        rng = random.Random(42)
        sl = SkipList(seed=1)
        model: list[int] = []
        for _ in range(2000):
            op = rng.random()
            if op < 0.6 or not model:
                v = rng.randint(0, 200)
                sl.insert(v)
                model.append(v)
                model.sort()
            else:
                v = rng.choice(model)
                sl.remove(v)
                model.remove(v)
            if rng.random() < 0.02:
                assert list(sl) == model
        assert list(sl) == model
        sl.check_invariants()

    def test_rank_queries_against_model(self):
        rng = random.Random(7)
        values = [rng.randint(0, 50) for _ in range(300)]
        sl = SkipList(values, seed=2)
        model = sorted(values)
        for rank in range(len(model)):
            assert sl[rank] == model[rank]
        for key in range(-1, 52):
            import bisect

            assert sl.bisect_left(key) == bisect.bisect_left(model, key)
            assert sl.bisect_right(key) == bisect.bisect_right(model, key)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-100, 100)))
def test_property_sorted_after_inserts(values):
    sl = SkipList(values, seed=0)
    assert list(sl) == sorted(values)
    sl.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-50, 50), min_size=1),
    st.data(),
)
def test_property_remove_keeps_order(values, data):
    sl = SkipList(values, seed=0)
    model = sorted(values)
    to_remove = data.draw(
        st.lists(st.sampled_from(values), max_size=len(values))
    )
    for v in to_remove:
        if v in model:
            sl.remove(v)
            model.remove(v)
    assert list(sl) == model
    sl.check_invariants()
