"""Tests for the ``python -m repro`` CSV monitoring CLI."""

from __future__ import annotations

import io
import random

import pytest

from repro.cli import build_parser, main


def csv_text(rows):
    return "\n".join(",".join(str(v) for v in row) for row in rows) + "\n"


def run_cli(args, stdin_text=""):
    out = io.StringIO()
    code = main(args, stdin=io.StringIO(stdin_text), stdout=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_columns(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["data.csv"])

    def test_defaults(self):
        args = build_parser().parse_args(["--columns", "2"])
        assert args.csv_file == "-"
        assert args.scoring == "closest"
        assert args.k == 5
        assert args.window == 1000

    def test_rejects_unknown_scoring(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--columns", "2", "--scoring", "odd"])


class TestMain:
    def test_stdin_stream_reports(self):
        rng = random.Random(1)
        rows = [(rng.random(), rng.random()) for _ in range(25)]
        code, out = run_cli(
            ["--columns", "2", "--k", "2", "--window", "20",
             "--report-every", "10"],
            stdin_text=csv_text(rows),
        )
        assert code == 0
        assert "after 10 rows" in out
        assert "after 20 rows" in out
        assert "done: 25 rows" in out
        assert "#1:" in out

    def test_file_input(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(csv_text([(1.0, 2.0), (1.1, 2.1), (5.0, 9.0)]))
        code, out = run_cli(
            ["--columns", "2", "--k", "1", "--window", "10",
             "--report-every", "100", str(path)],
        )
        assert code == 0
        assert "rows 1 & 2" in out  # the two close rows win

    def test_skip_header(self):
        text = "x,y\n1.0,2.0\n1.5,2.5\n"
        code, out = run_cli(
            ["--columns", "2", "--skip-header", "--k", "1",
             "--window", "10"],
            stdin_text=text,
        )
        assert code == 0
        assert "done: 2 rows" in out

    def test_header_without_flag_fails(self):
        with pytest.raises(SystemExit, match="row 1"):
            run_cli(["--columns", "2"], stdin_text="x,y\n1.0,2.0\n")

    def test_short_row_fails(self):
        with pytest.raises(SystemExit, match="columns"):
            run_cli(["--columns", "3"], stdin_text="1.0,2.0\n")

    def test_empty_input_reports_nothing_gracefully(self):
        code, out = run_cli(["--columns", "2"], stdin_text="")
        assert code == 0
        assert "no pairs in the window yet" in out

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["--columns", "2", "--k", "0"])
        with pytest.raises(SystemExit):
            run_cli(["--columns", "2", "--window", "1"])

    @pytest.mark.parametrize(
        "scoring", ["closest", "furthest", "similar", "dissimilar"]
    )
    def test_all_scoring_choices_run(self, scoring):
        rng = random.Random(2)
        rows = [(rng.random(), rng.random()) for _ in range(15)]
        code, out = run_cli(
            ["--columns", "2", "--scoring", scoring, "--k", "2",
             "--window", "10"],
            stdin_text=csv_text(rows),
        )
        assert code == 0
        assert "skyband size" in out
