"""Tests for the ``python -m repro`` CSV monitoring CLI."""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.cli import build_obs_parser, build_parser, main


def csv_text(rows):
    return "\n".join(",".join(str(v) for v in row) for row in rows) + "\n"


def run_cli(args, stdin_text=""):
    out = io.StringIO()
    code = main(args, stdin=io.StringIO(stdin_text), stdout=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_columns(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["data.csv"])

    def test_defaults(self):
        args = build_parser().parse_args(["--columns", "2"])
        assert args.csv_file == "-"
        assert args.scoring == "closest"
        assert args.k == 5
        assert args.window == 1000

    def test_rejects_unknown_scoring(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--columns", "2", "--scoring", "odd"])


class TestMain:
    def test_stdin_stream_reports(self):
        rng = random.Random(1)
        rows = [(rng.random(), rng.random()) for _ in range(25)]
        code, out = run_cli(
            ["--columns", "2", "--k", "2", "--window", "20",
             "--report-every", "10"],
            stdin_text=csv_text(rows),
        )
        assert code == 0
        assert "after 10 rows" in out
        assert "after 20 rows" in out
        assert "done: 25 rows" in out
        assert "#1:" in out

    def test_file_input(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(csv_text([(1.0, 2.0), (1.1, 2.1), (5.0, 9.0)]))
        code, out = run_cli(
            ["--columns", "2", "--k", "1", "--window", "10",
             "--report-every", "100", str(path)],
        )
        assert code == 0
        assert "rows 1 & 2" in out  # the two close rows win

    def test_skip_header(self):
        text = "x,y\n1.0,2.0\n1.5,2.5\n"
        code, out = run_cli(
            ["--columns", "2", "--skip-header", "--k", "1",
             "--window", "10"],
            stdin_text=text,
        )
        assert code == 0
        assert "done: 2 rows" in out

    def test_header_without_flag_fails(self):
        with pytest.raises(SystemExit, match="row 1"):
            run_cli(["--columns", "2"], stdin_text="x,y\n1.0,2.0\n")

    def test_short_row_fails(self):
        with pytest.raises(SystemExit, match="columns"):
            run_cli(["--columns", "3"], stdin_text="1.0,2.0\n")

    def test_empty_input_reports_nothing_gracefully(self):
        code, out = run_cli(["--columns", "2"], stdin_text="")
        assert code == 0
        assert "no pairs in the window yet" in out

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["--columns", "2", "--k", "0"])
        with pytest.raises(SystemExit):
            run_cli(["--columns", "2", "--window", "1"])

    @pytest.mark.parametrize(
        "scoring", ["closest", "furthest", "similar", "dissimilar"]
    )
    def test_all_scoring_choices_run(self, scoring):
        rng = random.Random(2)
        rows = [(rng.random(), rng.random()) for _ in range(15)]
        code, out = run_cli(
            ["--columns", "2", "--scoring", scoring, "--k", "2",
             "--window", "10"],
            stdin_text=csv_text(rows),
        )
        assert code == 0
        assert "skyband size" in out


class TestLintSubcommand:
    def test_clean_tree_exits_zero(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text('__all__ = ["f"]\n\n\ndef f():\n    return 1\n')
        code, out = run_cli(["lint", str(tmp_path)])
        assert code == 0
        assert "no violations" in out

    def test_findings_exit_nonzero_with_rule_and_location(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        code, out = run_cli(["lint", str(bad)])
        assert code == 1
        assert "RA102" in out
        assert f"{bad}:1" in out

    def test_default_paths_lint_shipped_package(self):
        code, out = run_cli(["lint"])
        assert code == 0
        assert "no violations" in out


class TestAuditSubcommand:
    def test_synthetic_stream_clean(self):
        code, out = run_cli(
            ["audit", "--dataset", "synthetic", "--steps", "120",
             "--window", "32", "--cross-check-every", "40"],
        )
        assert code == 0
        assert "audit: 120 objects" in out
        assert "120 structural checks" in out
        assert "3 brute-force cross-checks" in out
        assert "no violations" in out

    @pytest.mark.parametrize("strategy", ["scase", "ta", "basic"])
    def test_strategies_clean(self, strategy):
        code, out = run_cli(
            ["audit", "--steps", "60", "--window", "24",
             "--strategy", strategy, "--scoring", "similar",
             "--cross-check-every", "30"],
        )
        assert code == 0
        assert "no violations" in out

    def test_sampling_interval_forwarded(self):
        code, out = run_cli(
            ["audit", "--steps", "64", "--window", "16",
             "--interval", "16", "--cross-check-every", "0"],
        )
        assert code == 0
        assert "4 structural checks" in out
        assert "0 brute-force cross-checks" in out

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["audit", "--steps", "0"])
        with pytest.raises(SystemExit):
            run_cli(["audit", "--window", "1"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["audit", "--dataset", "realworld"])


class TestObsSubcommand:
    def test_parser_defaults(self):
        args = build_obs_parser().parse_args([])
        assert args.dataset == "synthetic"
        assert args.steps == 1000
        assert args.window == 256
        assert args.format == "summary"
        assert args.out == "-"
        assert args.metrics is None

    def test_summary_format(self):
        code, out = run_cli(
            ["obs", "--steps", "80", "--window", "24", "--k", "3"]
        )
        assert code == 0
        assert "obs: 80 objects in 80 ticks" in out
        assert "metric families" in out

    def test_prometheus_format(self):
        code, out = run_cli(
            ["obs", "--steps", "60", "--window", "20", "--format",
             "prometheus"]
        )
        assert code == 0
        lines = out.splitlines()
        assert "# TYPE repro_ticks_total counter" in lines
        assert "repro_ticks_total 60" in lines
        assert "# TYPE repro_append_seconds histogram" in lines
        assert any(line.startswith("repro_skyband_size ")
                   for line in lines)
        assert any(line.startswith("repro_pst_rebuilds_total ")
                   for line in lines)

    def test_jsonl_format_one_record_per_tick(self):
        code, out = run_cli(
            ["obs", "--steps", "40", "--window", "16", "--format", "jsonl"]
        )
        assert code == 0
        records = [json.loads(line) for line in out.splitlines()]
        assert len(records) == 40
        assert records[-1]["tick"] == 40
        assert "phases" in records[0]

    def test_out_file_and_metrics_sidecar(self, tmp_path):
        out_file = tmp_path / "trace.csv"
        metrics_file = tmp_path / "metrics.json"
        code, out = run_cli(
            ["obs", "--steps", "30", "--window", "12", "--format", "csv",
             "--out", str(out_file), "--metrics", str(metrics_file)]
        )
        assert code == 0
        assert f"metrics written to {metrics_file}" in out
        assert out_file.read_text().count("\n") == 31  # header + 30 ticks
        payload = json.loads(metrics_file.read_text())
        assert payload["command"] == "obs"
        assert payload["metrics"]["repro_ticks_total"] == 30

    def test_batched_ingestion(self):
        code, out = run_cli(
            ["obs", "--steps", "60", "--window", "20",
             "--batch-size", "15"]
        )
        assert code == 0
        assert "obs: 60 objects in 4 ticks" in out

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["obs", "--steps", "0"])
        with pytest.raises(SystemExit):
            run_cli(["obs", "--window", "1"])
        with pytest.raises(SystemExit):
            run_cli(["obs", "--dataset", "realworld"])


class TestAuditMetricsFlag:
    def test_audit_writes_metrics_json(self, tmp_path):
        metrics_file = tmp_path / "audit-metrics.json"
        code, out = run_cli(
            ["audit", "--steps", "60", "--window", "16",
             "--cross-check-every", "0", "--metrics", str(metrics_file)],
        )
        assert code == 0
        assert "no violations" in out
        assert f"metrics written to {metrics_file}" in out
        payload = json.loads(metrics_file.read_text())
        assert payload["command"] == "audit"
        assert payload["metrics"]["repro_ticks_total"] == 60


class TestVersionFlag:
    def test_version_long(self):
        from repro import __version__

        code, out = run_cli(["--version"])
        assert code == 0
        assert out.strip() == f"repro {__version__}"

    def test_version_short(self):
        from repro import __version__

        code, out = run_cli(["-V"])
        assert code == 0
        assert __version__ in out


class TestServeParsers:
    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(["--columns", "2"])
        assert args.port == 7807
        assert args.window == 1000
        assert args.backpressure == "block"
        assert args.queue_depth == 64
        assert args.restore is None

    def test_serve_parser_requires_columns(self):
        from repro.cli import build_serve_parser

        with pytest.raises(SystemExit):
            build_serve_parser().parse_args([])

    def test_client_parser_intermixed_positional(self):
        from repro.cli import build_client_parser

        args = build_client_parser().parse_intermixed_args(
            ["ingest", "--port", "7807", "--columns", "2", "data.csv"]
        )
        assert args.action == "ingest"
        assert args.csv_file == "data.csv"

    def test_bench_parser_accepts_serve_suite(self):
        from repro.cli import build_bench_parser

        args = build_bench_parser().parse_args(["serve"])
        assert args.suite == "serve"
