"""Public-API surface tests: exports, exception hierarchy and the
README quickstart contract."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.scoring
        import repro.serve
        import repro.stream
        import repro.structures

        for module in (
            repro.analysis, repro.baselines, repro.core, repro.datasets,
            repro.scoring, repro.serve, repro.stream, repro.structures,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "InvalidParameterError", "UnknownQueryError",
            "DuplicateItemError", "ItemNotFoundError",
            "EmptyStructureError", "ScoringFunctionError", "WindowError",
            "ServeError", "ProtocolError", "CheckpointError",
        ):
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError), name

    def test_dual_inheritance_for_std_catchability(self):
        """Library errors are also catchable as their stdlib analogues."""
        assert issubclass(exceptions.InvalidParameterError, ValueError)
        assert issubclass(exceptions.UnknownQueryError, KeyError)
        assert issubclass(exceptions.ItemNotFoundError, KeyError)
        assert issubclass(exceptions.EmptyStructureError, IndexError)
        assert issubclass(exceptions.WindowError, ValueError)
        assert issubclass(exceptions.ProtocolError, ValueError)
        assert issubclass(exceptions.CheckpointError, ValueError)

    def test_one_except_catches_everything(self):
        with pytest.raises(exceptions.ReproError):
            repro.TopKPairsMonitor(10, 0)

    def test_audit_violation_error_in_hierarchy(self):
        assert issubclass(exceptions.AuditViolationError,
                          exceptions.ReproError)
        # ... and catchable by test harnesses expecting assertions.
        assert issubclass(exceptions.AuditViolationError, AssertionError)


class TestAuditExports:
    def test_entry_points_exported(self):
        for name in (
            "MonitorAuditor", "Violation", "AuditViolationError",
            "check_monitor", "check_pst", "check_skiplist",
            "check_skyband", "check_staircase", "check_window",
            "lint_paths",
        ):
            assert name in repro.__all__, name
            assert getattr(repro, name) is not None, name

    def test_violation_is_structured(self):
        violation = repro.Violation(
            rule="PST-HEAP", message="demo", paper_ref="paper §IV-A",
            subject="node", location="pst",
        )
        assert violation.rule == "PST-HEAP"
        assert "PST-HEAP" in str(violation)
        assert "§IV-A" in str(violation)

    def test_checkers_accept_live_structures(self):
        monitor = repro.TopKPairsMonitor(16, 2, audit=True)
        monitor.register_query(repro.k_closest_pairs(2), k=2)
        for i in range(20):
            monitor.append((float(i % 7), float(i % 5)))
        assert repro.check_monitor(monitor) == []
        assert isinstance(monitor.auditor, repro.MonitorAuditor)


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        monitor = repro.TopKPairsMonitor(window_size=1000, num_attributes=2)
        closest = repro.k_closest_pairs(2)
        query = monitor.register_query(closest, k=3, n=500)
        monitor.append((0.1, 0.9))
        monitor.append((0.15, 0.88))
        monitor.append((0.7, 0.2))
        results = monitor.results(query)
        assert len(results) == 3
        best = results[0]
        assert best.older.values == (0.1, 0.9)
        assert best.newer.values == (0.15, 0.88)
        assert best.score == pytest.approx(0.07)
